// Property suite for steiner_minor (the "repaired tree" T^2_h of Theorem 7):
// on random trees and random bag subsets, the output must be a tree on
// exactly the bag vertices, real edges must be genuine T edges with no
// intermediate bag vertex skipped, and every T-edge inside the bag must
// surface as a real local edge.
#include <gtest/gtest.h>

#include <set>

#include "core/local_tree.hpp"
#include "gen/basic.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

class SteinerMinorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SteinerMinorSweep, StructuralInvariants) {
  auto [seed, bag_size] = GetParam();
  Rng rng(seed);
  const VertexId n = 200;
  Graph g = gen::random_tree(n, rng);
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);

  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  std::vector<VertexId> bag;
  for (int i = 0; i < bag_size; ++i) bag.push_back(pick(rng));
  std::set<VertexId> bag_set(bag.begin(), bag.end());

  LocalTree lt = steiner_minor(t, bag);

  // Exactly the (distinct) bag vertices, each mapped once.
  EXPECT_EQ(lt.to_global.size(), bag_set.size());
  std::set<VertexId> mapped(lt.to_global.begin(), lt.to_global.end());
  EXPECT_EQ(mapped, bag_set);
  EXPECT_EQ(lt.tree.num_vertices(),
            static_cast<VertexId>(bag_set.size()));

  for (VertexId lv = 0; lv < lt.tree.num_vertices(); ++lv) {
    if (lv == lt.tree.root()) {
      EXPECT_EQ(lt.real_parent_edge[lv], kInvalidEdge);
      continue;
    }
    VertexId child_g = lt.to_global[lv];
    VertexId parent_g = lt.to_global[lt.tree.parent(lv)];
    if (lt.real_parent_edge[lv] != kInvalidEdge) {
      // Real edge: genuine T edge between the two global endpoints.
      EXPECT_EQ(t.parent(child_g), parent_g);
      EXPECT_EQ(g.other_endpoint(lt.real_parent_edge[lv], child_g), parent_g);
    } else if (t.is_ancestor(parent_g, child_g)) {
      // Virtual ancestor edge: the contracted path must contain no other bag
      // vertex strictly inside (otherwise contraction skipped a terminal).
      for (VertexId x = t.parent(child_g); x != parent_g; x = t.parent(x))
        EXPECT_FALSE(bag_set.count(x))
            << "contracted path skipped bag vertex " << x;
      // ... and its length is >= 2, else it should have been real.
      EXPECT_NE(t.parent(child_g), parent_g);
    }
  }

  // Every T edge with both endpoints in the bag appears as a real edge.
  std::set<EdgeId> real_edges;
  for (VertexId lv = 0; lv < lt.tree.num_vertices(); ++lv)
    if (lt.real_parent_edge[lv] != kInvalidEdge)
      real_edges.insert(lt.real_parent_edge[lv]);
  for (VertexId v : bag_set) {
    if (v == t.root()) continue;
    if (bag_set.count(t.parent(v))) {
      EXPECT_TRUE(real_edges.count(t.parent_edge(v)))
          << "T edge inside bag missing from local tree";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, SteinerMinorSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 13),
                       ::testing::Values(2, 5, 20, 80)));

TEST(SteinerMinor, SingleVertexBag) {
  Graph g = gen::path(5);
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  LocalTree lt = steiner_minor(t, std::vector<VertexId>{3});
  EXPECT_EQ(lt.tree.num_vertices(), 1);
  EXPECT_EQ(lt.to_global[0], 3);
}

TEST(SteinerMinor, RejectsEmptyBag) {
  Graph g = gen::path(3);
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  EXPECT_THROW((void)steiner_minor(t, std::vector<VertexId>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mns
