// End-to-end contract for the bench JSON writer: JsonRow must escape every
// control character (a stray newline/tab in a field used to produce an
// unparseable BENCH_*.json), and a written JsonReport must parse back as
// real JSON with the original strings intact. The parser below is a minimal
// RFC 8259 subset (objects / arrays / strings / numbers) — enough to reject
// any malformed output.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace mns {
namespace {

// ---------------------------------------------------------------- parser --

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r'))
      ++i;
  }
  char peek() {
    skip_ws();
    if (i >= s.size()) throw std::runtime_error("json: unexpected end");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("json: expected '") + c + "' at " +
                               std::to_string(i));
    ++i;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i >= s.size()) throw std::runtime_error("json: unterminated string");
      char c = s[i++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        throw std::runtime_error("json: raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i >= s.size()) throw std::runtime_error("json: dangling escape");
      char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i + 4 > s.size()) throw std::runtime_error("json: bad \\u");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              throw std::runtime_error("json: bad hex digit");
          }
          if (code > 0xFF) throw std::runtime_error("json: non-ASCII \\u");
          out += static_cast<char>(code);
          break;
        }
        default:
          throw std::runtime_error("json: unknown escape");
      }
    }
    return out;
  }
  double parse_number() {
    skip_ws();
    std::size_t start = i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E'))
      ++i;
    if (i == start) throw std::runtime_error("json: expected number");
    return std::stod(s.substr(start, i - start));
  }
  /// Flat value: string or number (all the writer emits).
  std::pair<std::string, double> parse_scalar(bool* is_string) {
    if (peek() == '"') {
      *is_string = true;
      return {parse_string(), 0.0};
    }
    *is_string = false;
    return {"", parse_number()};
  }
};

struct ParsedReport {
  std::string bench;
  double wall_time_ms = 0.0;
  std::vector<std::map<std::string, std::string>> string_fields;
  std::vector<std::map<std::string, double>> number_fields;
};

ParsedReport parse_report(const std::string& text) {
  JsonParser p{text};
  ParsedReport out;
  p.expect('{');
  bool first_key = true;
  while (p.peek() != '}') {
    if (!first_key) p.expect(',');
    first_key = false;
    std::string key = p.parse_string();
    p.expect(':');
    if (key == "bench") {
      out.bench = p.parse_string();
    } else if (key == "wall_time_ms") {
      out.wall_time_ms = p.parse_number();
    } else if (key == "rows") {
      p.expect('[');
      if (p.peek() == ']') {
        ++p.i;
      } else {
        while (true) {
          p.expect('{');
          out.string_fields.emplace_back();
          out.number_fields.emplace_back();
          bool first = true;
          while (p.peek() != '}') {
            if (!first) p.expect(',');
            first = false;
            std::string k = p.parse_string();
            p.expect(':');
            bool is_string = false;
            auto [str, num] = p.parse_scalar(&is_string);
            if (is_string)
              out.string_fields.back()[k] = str;
            else
              out.number_fields.back()[k] = num;
          }
          p.expect('}');
          if (p.peek() == ',') {
            ++p.i;
            continue;
          }
          p.expect(']');
          break;
        }
      }
    } else {
      throw std::runtime_error("json: unexpected key " + key);
    }
  }
  p.expect('}');
  return out;
}

// ----------------------------------------------------------------- tests --

TEST(JsonRow, EscapesControlCharacters) {
  bench::JsonRow row;
  row.set("s", std::string("line1\nline2\tend\x01\"quoted\\slash"));
  std::string rendered = row.rendered();
  EXPECT_NE(rendered.find("\\n"), std::string::npos);
  EXPECT_NE(rendered.find("\\t"), std::string::npos);
  EXPECT_NE(rendered.find("\\u0001"), std::string::npos);
  EXPECT_NE(rendered.find("\\\""), std::string::npos);
  EXPECT_NE(rendered.find("\\\\"), std::string::npos);
  // No raw control characters may survive.
  for (char c : rendered)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(JsonReport, WrittenFileParsesEndToEnd) {
  const std::string nasty = "multi\nline\twith\r\"quotes\" \\ and \x02 ctrl";
  const std::string path = "BENCH_json_contract_tmp.json";
  {
    bench::JsonReport report("json_contract_tmp");
    report.row().set("family", nasty).set("n", 42).set("ratio", 1.5);
    report.row().set("family", "plain").set("n", 7);
    ASSERT_TRUE(report.write());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "report file missing";
  std::stringstream buf;
  buf << in.rdbuf();
  ParsedReport parsed;
  ASSERT_NO_THROW(parsed = parse_report(buf.str())) << buf.str();
  EXPECT_EQ(parsed.bench, "json_contract_tmp");
  EXPECT_GE(parsed.wall_time_ms, 0.0);
  ASSERT_EQ(parsed.string_fields.size(), 2u);
  // The nasty string round-trips exactly through escape + parse.
  EXPECT_EQ(parsed.string_fields[0].at("family"), nasty);
  EXPECT_EQ(parsed.number_fields[0].at("n"), 42.0);
  EXPECT_EQ(parsed.number_fields[0].at("ratio"), 1.5);
  EXPECT_EQ(parsed.string_fields[1].at("family"), "plain");
  std::remove(path.c_str());
}

TEST(JsonReport, WriteFailureIsReportedNotSwallowed) {
  // A report that cannot be written must return false so the harness main
  // can exit nonzero (CI treats a missing BENCH file as a failed run) —
  // the old behavior only warned to stderr and benches exited 0.
  bench::JsonReport broken("no_such_dir/report");  // -> BENCH_no_such_dir/...
  broken.row().set("n", 1);
  EXPECT_FALSE(broken.write());

  bench::JsonReport ok("write_status_tmp");
  ok.row().set("n", 1);
  EXPECT_TRUE(ok.write());
  std::remove("BENCH_write_status_tmp.json");
}

TEST(JsonReport, EveryRowRecordsHardwareContext) {
  // BENCH_*.json trajectories are compared across machines: every row must
  // say what hardware it ran on (hardware_concurrency) and, for run rows,
  // at what thread width (threads).
  const std::string path = "BENCH_hw_context_tmp.json";
  {
    bench::JsonReport report("hw_context_tmp");
    report.row().set("n", 1);  // even a bare metrics row carries the context
    congest::RunReport run;
    run.threads = 3;
    report.row().set("family", "x").set_run(run);
    ASSERT_TRUE(report.write());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  ParsedReport parsed = parse_report(buf.str());
  ASSERT_EQ(parsed.number_fields.size(), 2u);
  for (const auto& fields : parsed.number_fields) {
    ASSERT_TRUE(fields.count("hardware_concurrency"));
    EXPECT_GE(fields.at("hardware_concurrency"), 1.0);
  }
  EXPECT_EQ(parsed.number_fields[1].at("threads"), 3.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mns
