// Contract tests for the bump arena behind the per-round data path
// (DESIGN.md §9 "Memory model"): bump/LIFO-rollback semantics, geometric
// slab growth, and the two properties the simulator stakes on it —
//
//   * zero steady-state allocations: once the round buffers hit their
//     high-water capacity, further rounds perform NO allocate() calls
//     (Simulator::arena_stats().block_requests goes flat), at width 1 and
//     at width 8;
//   * error paths never advance an arena cursor: a throwing stage_send /
//     skip_rounds leaves the allocation counters (and all staged state)
//     exactly as they were — the staging mirror of the existing
//     negative-validation tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "congest/arena.hpp"
#include "congest/simulator.hpp"
#include "congest/vertex_program.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

namespace mns {
namespace {

using congest::Arena;
using congest::ArenaAllocator;
using congest::ArenaVector;
using congest::Message;
using congest::Simulator;

TEST(ArenaContract, BumpAllocationAndStats) {
  Arena arena;
  EXPECT_EQ(arena.stats().block_requests, 0u);
  EXPECT_EQ(arena.stats().slabs, 0u);  // idle arenas cost nothing
  void* a = arena.allocate(100, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.stats().block_requests, 1u);
  EXPECT_EQ(arena.stats().slabs, 1u);
  // Within-slab allocations bump the cursor, not the slab count.
  void* b = arena.allocate(100, 8);
  EXPECT_EQ(arena.stats().slabs, 1u);
  EXPECT_GE(static_cast<std::byte*>(b), static_cast<std::byte*>(a) + 100);
  // Alignment honored.
  void* c = arena.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
}

TEST(ArenaContract, LifoRollbackRecyclesTopBlock) {
  Arena arena;
  (void)arena.allocate(64, 8);
  void* top = arena.allocate(64, 8);
  arena.deallocate(top, 64);  // top of the slab: cursor rolls back
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(again, top);  // the block was genuinely reclaimed
  // Non-LIFO deallocation is a no-op (retained until destruction).
  void* x = arena.allocate(32, 8);
  void* y = arena.allocate(32, 8);
  arena.deallocate(x, 32);  // not the top — must NOT free y's storage
  void* z = arena.allocate(32, 8);
  EXPECT_NE(z, x);
  EXPECT_GT(static_cast<std::byte*>(z), static_cast<std::byte*>(y));
}

TEST(ArenaContract, SlabsGrowGeometrically) {
  Arena arena;
  // Force several slabs; reservation must stay within a small constant
  // factor of what was asked for (geometric growth, no per-block slabs).
  std::size_t asked = 0;
  for (int i = 0; i < 200; ++i) {
    (void)arena.allocate(1 << 14, 8);
    asked += 1 << 14;
  }
  EXPECT_LT(arena.stats().slabs, 12u);  // ~log2(total/kMinSlab) slabs
  EXPECT_LT(arena.stats().bytes_reserved, 4 * asked + (1 << 20));
}

TEST(ArenaContract, ArenaVectorGrowthReusesViaLifoRollback) {
  // The vector-grow pattern (allocate bigger, copy, deallocate old) is the
  // warm-up workload the LIFO rollback exists for: repeated push_back growth
  // must not leave more than the final capacity plus the geometric ladder
  // behind.
  Arena arena;
  ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 100000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100000u);
  for (std::uint64_t i = 0; i < 100000; ++i)
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_LT(arena.stats().bytes_reserved, 8 * 100000 * 8);
}

/// Ping-pong traffic dense enough to keep every per-round buffer warm:
/// every vertex of a cycle sends to both neighbours each round.
void run_dense_rounds(const Graph& g, Simulator& sim, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (EdgeId e : g.incident_edges(v)) sim.send(v, e, Message{0, 0, v});
    sim.finish_round();
  }
}

TEST(ArenaContract, ZeroSteadyStateAllocationsSequential) {
  Graph g = gen::cycle(512);
  Simulator sim(g);
  run_dense_rounds(g, sim, 4);  // warm-up: buffers reach high water
  const Arena::Stats warm = sim.arena_stats();
  EXPECT_GT(warm.block_requests, 0u);
  run_dense_rounds(g, sim, 50);
  EXPECT_EQ(sim.arena_stats(), warm)
      << "steady-state rounds performed arena allocations";
}

/// The same min-label flooding shape the parity tests use, trimmed to what
/// the allocation test needs: full-frontier staged traffic at width 8.
struct FloodProgram {
  const Graph* g;
  std::vector<std::int64_t> label;
  congest::FrontierTracker tracker;

  FloodProgram(const Graph& graph, Simulator& sim)
      : g(&graph),
        label(static_cast<std::size_t>(graph.num_vertices())),
        tracker(sim.num_shards(), graph.num_vertices()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      label[static_cast<std::size_t>(v)] =
          (static_cast<std::int64_t>(v) * 2654435761LL) % 100003;
      tracker.seed(v);
    }
  }
  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }
  void send(VertexId v, congest::VertexSender& out) {
    for (EdgeId e : g->incident_edges(v))
      out.send(e, Message{0, 0, label[static_cast<std::size_t>(v)]});
  }
  void receive(VertexId v, congest::Inbox inbox,
               const congest::ShardContext& ctx) {
    for (const congest::Delivery& d : inbox)
      if (d.msg.value < label[static_cast<std::size_t>(v)]) {
        label[static_cast<std::size_t>(v)] = d.msg.value;
        tracker.wake_from_receive(v, ctx.shard);
      }
  }
  void end_round() { tracker.end_round(); }
};

TEST(ArenaContract, ZeroSteadyStateAllocationsAtWidth8) {
  // The ISSUE's tentpole criterion verbatim: zero steady-state allocations
  // at width >= 8. Run the engine's staged path (frontier > kParallelGrain,
  // so all 8 shards really stage) until warm, then demand flat counters.
  Graph g = gen::grid(40, 40).graph();
  Simulator sim(g, congest::ExecutionPolicy{8});
  ASSERT_EQ(sim.num_shards(), 8);

  auto warm_run = [&] {
    FloodProgram prog(g, sim);
    congest::run_vertex_program(sim, prog);
  };
  warm_run();  // warm-up: arenas reach their high-water marks
  warm_run();  // (two passes: the first may end before every buffer peaked)
  const Arena::Stats warm = sim.arena_stats();
  EXPECT_GT(warm.block_requests, 0u);
  for (int rep = 0; rep < 3; ++rep) warm_run();
  EXPECT_EQ(sim.arena_stats(), warm)
      << "width-8 steady-state rounds performed arena allocations";
}

TEST(ArenaContract, ThrowingStageSendLeavesArenaUntouched) {
  // Mirror of StageSendValidatesEagerlyWhereItCan, at the arena layer: on a
  // FRESH simulator the first real staging write must allocate, so a
  // throwing call that left the counters at zero provably wrote nothing
  // (validation precedes any buffer write — the satellite fix).
  Graph g = gen::path(3);
  Simulator sim(g, congest::ExecutionPolicy{2});
  const Arena::Stats before = sim.arena_stats();
  EXPECT_THROW(sim.stage_send(0, 2, g.find_edge(0, 1), Message{}),
               std::invalid_argument);  // 2 is not on edge (0,1)
  EXPECT_THROW(sim.stage_send(5, 0, g.find_edge(0, 1), Message{}),
               std::out_of_range);  // shard out of range
  EXPECT_THROW(sim.stage_send(-1, 0, g.find_edge(0, 1), Message{}),
               std::out_of_range);
  EXPECT_EQ(sim.arena_stats(), before)
      << "a throwing stage_send advanced an arena cursor";
  // A valid staged send after the failures lands alone and intact.
  sim.stage_send(0, 0, g.find_edge(0, 1), Message{0, 0, 42});
  sim.finish_round();
  EXPECT_EQ(sim.messages_sent(), 1);
  ASSERT_EQ(sim.inbox(1).size(), 1u);
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 42);
}

TEST(ArenaContract, ThrowingSkipRoundsLeavesArenaAndStateUntouched) {
  Graph g = gen::path(2);
  Simulator sim(g);
  sim.send(0, 0, Message{0, 0, 5});  // pending state that must survive
  const Arena::Stats before = sim.arena_stats();
  EXPECT_THROW(sim.skip_rounds(-1), std::invalid_argument);
  EXPECT_EQ(sim.arena_stats(), before);
  EXPECT_EQ(sim.rounds(), 0);
  sim.finish_round();  // the pending send was not disturbed
  EXPECT_EQ(sim.rounds(), 1);
  ASSERT_EQ(sim.inbox(1).size(), 1u);
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 5);
}

TEST(ArenaContract, PerShardArenaVecStopsAllocatingOnceWarm) {
  congest::PerShardArenaVec<VertexId> acc(4);
  auto fill_and_drain = [&] {
    for (int s = 0; s < 4; ++s)
      for (VertexId v = 0; v < 1000; ++v) acc[s].push_back(v);
    acc.for_each([](ArenaVector<VertexId>& part) { part.clear(); });
  };
  fill_and_drain();
  const Arena::Stats warm = acc.arena_stats();
  EXPECT_GT(warm.block_requests, 0u);
  for (int rep = 0; rep < 10; ++rep) fill_and_drain();
  EXPECT_EQ(acc.arena_stats(), warm);
}

}  // namespace
}  // namespace mns
