// Packed-wire parity (DESIGN.md §9): the 20-byte slot/payload wire format
// must be observationally identical to the retired 24-byte Delivery records.
// A retained reference decoder re-derives (from, edge) from the raw directed
// slot `2e + side` and the graph, independently of Inbox's own decoding; a
// min-label flooding program then drives multi-round traffic on all four
// certificate families (planar, treewidth, apex, clique-sum) at widths
// 1/2/4/8 and pins rounds, messages, and the per-round inbox BYTES (raw
// slots + payloads, in delivery order) bit-identical across widths — the
// determinism contract of DESIGN.md §7 expressed against the wire itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "congest/simulator.hpp"
#include "congest/vertex_program.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"

namespace mns {
namespace {

using congest::Delivery;
using congest::Inbox;
using congest::Message;
using congest::Simulator;

/// The RETAINED REFERENCE DECODER: the seed semantics of a delivery record,
/// reconstructed from the packed directed slot alone. Kept deliberately
/// independent of Inbox::operator[] so the two implementations check each
/// other.
Delivery reference_decode(const Graph& g, std::uint32_t slot,
                          const Message& payload) {
  const EdgeId e = static_cast<EdgeId>(slot >> 1);
  const Edge& ed = g.edge(e);
  const VertexId sender = (slot & 1u) == 0 ? ed.u : ed.v;
  return Delivery{sender, e, payload};
}

/// FNV-1a over arbitrary bytes — the inbox digest primitive.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::int64_t mix_label(VertexId v) {
  std::uint64_t x = static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::int64_t>(x >> 1);  // nonnegative
}

/// Min-label flooding: every vertex starts on the frontier with a distinct
/// pseudo-random label and floods its current minimum to all neighbours;
/// improved vertices re-flood next round. Converges to the global minimum in
/// O(diameter) rounds, with an n-sized first frontier (so widths > 1 really
/// stage across shards) shrinking through the inline-grain path — both merge
/// paths are exercised in one run. end_round() digests the round's raw inbox
/// bytes and cross-checks Inbox against the reference decoder.
struct MinLabelFlood {
  const Graph* g;
  Simulator* sim;
  std::vector<std::int64_t> label;
  congest::FrontierTracker tracker;
  std::vector<std::uint64_t> round_digests;
  long long decode_mismatches = 0;

  MinLabelFlood(const Graph& graph, Simulator& s)
      : g(&graph),
        sim(&s),
        label(static_cast<std::size_t>(graph.num_vertices())),
        tracker(s.num_shards(), graph.num_vertices()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      label[static_cast<std::size_t>(v)] = mix_label(v);
      tracker.seed(v);
    }
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }
  void send(VertexId v, congest::VertexSender& out) {
    for (EdgeId e : g->incident_edges(v))
      out.send(e, Message{0, static_cast<std::int32_t>(v & 0x7fff),
                          label[static_cast<std::size_t>(v)]});
  }
  void receive(VertexId v, Inbox inbox, const congest::ShardContext& ctx) {
    for (const Delivery& d : inbox) {
      if (d.msg.value < label[static_cast<std::size_t>(v)]) {
        label[static_cast<std::size_t>(v)] = d.msg.value;
        tracker.wake_from_receive(v, ctx.shard);
      }
    }
  }
  void end_round() {
    // Digest the round that just finished: receivers in delivery order, each
    // inbox's raw slot and payload bytes verbatim.
    std::uint64_t h = 14695981039346656037ULL;
    for (VertexId v : sim->delivered_to()) {
      h = fnv1a(h, &v, sizeof(v));
      const Inbox in = sim->inbox(v);
      const std::span<const std::uint32_t> slots = in.slots();
      const std::span<const Message> payloads = in.payloads();
      h = fnv1a(h, slots.data(), slots.size_bytes());
      h = fnv1a(h, payloads.data(), payloads.size_bytes());
      // Reference-decoder cross-check, delivery for delivery.
      for (std::size_t i = 0; i < in.size(); ++i) {
        const Delivery got = in[i];
        const Delivery want = reference_decode(*g, slots[i], payloads[i]);
        if (got.from != want.from || got.edge != want.edge ||
            std::memcmp(&got.msg, &want.msg, sizeof(Message)) != 0)
          ++decode_mismatches;
        // The sender must be the far endpoint of the edge relative to v.
        const Edge& ed = g->edge(want.edge);
        if (want.from != (v == ed.u ? ed.v : ed.u)) ++decode_mismatches;
      }
    }
    round_digests.push_back(h);
    tracker.end_round();
  }
};

struct FloodTrace {
  long long rounds = 0;
  long long messages = 0;
  std::vector<std::uint64_t> digests;
  std::vector<std::int64_t> labels;
};

FloodTrace run_flood(const Graph& g, int width) {
  Simulator sim(g, congest::ExecutionPolicy{width});
  MinLabelFlood prog(g, sim);
  congest::run_vertex_program(sim, prog);
  EXPECT_EQ(prog.decode_mismatches, 0)
      << "Inbox decoding disagrees with the reference decoder at width "
      << width;
  return FloodTrace{sim.rounds(), sim.messages_sent(),
                    std::move(prog.round_digests), std::move(prog.label)};
}

void expect_width_parity(const Graph& g, const char* family) {
  SCOPED_TRACE(family);
  ASSERT_GT(g.num_vertices(), static_cast<VertexId>(congest::kParallelGrain))
      << "instance too small to exercise the staged multi-shard path";
  const FloodTrace seq = run_flood(g, 1);
  // Converged: every vertex holds the global minimum (the graphs are
  // connected), so the traffic really flooded end to end.
  std::int64_t global_min = seq.labels[0];
  for (std::int64_t l : seq.labels) global_min = std::min(global_min, l);
  for (std::int64_t l : seq.labels) EXPECT_EQ(l, global_min);
  for (int width : {2, 4, 8}) {
    SCOPED_TRACE(width);
    const FloodTrace par = run_flood(g, width);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(par.messages, seq.messages);
    ASSERT_EQ(par.digests.size(), seq.digests.size());
    for (std::size_t r = 0; r < seq.digests.size(); ++r)
      EXPECT_EQ(par.digests[r], seq.digests[r])
          << "inbox bytes diverged in round " << r;
    EXPECT_EQ(par.labels, seq.labels);
  }
}

TEST(WireParity, PackedSlotEncoding) {
  // The raw wire values, pinned: slot = 2e + side, side 0 = sent by
  // edge(e).u, payload verbatim.
  Graph g = gen::path(3);
  Simulator sim(g);
  const EdgeId e01 = g.find_edge(0, 1);
  const EdgeId e12 = g.find_edge(1, 2);
  sim.send(1, e01, Message{7, 8, 9});   // 1 is edge(e01).v -> side 1
  sim.send(1, e12, Message{4, 5, 6});   // 1 is edge(e12).u -> side 0
  sim.finish_round();
  const Inbox in0 = sim.inbox(0);
  ASSERT_EQ(in0.size(), 1u);
  EXPECT_EQ(in0.slots()[0], 2u * static_cast<std::uint32_t>(e01) + 1u);
  EXPECT_EQ(in0.payloads()[0].tag, 7);
  EXPECT_EQ(in0.payloads()[0].aux, 8);
  EXPECT_EQ(in0.payloads()[0].value, 9);
  const Inbox in2 = sim.inbox(2);
  ASSERT_EQ(in2.size(), 1u);
  EXPECT_EQ(in2.slots()[0], 2u * static_cast<std::uint32_t>(e12));
  EXPECT_EQ(in2.payloads()[0].value, 6);
  // Decoded view matches the reference decoder on both.
  for (const Inbox& in : {in0, in2}) {
    const Delivery want = reference_decode(g, in.slots()[0], in.payloads()[0]);
    EXPECT_EQ(in[0].from, want.from);
    EXPECT_EQ(in[0].edge, want.edge);
    EXPECT_EQ(in[0].msg.value, want.msg.value);
  }
}

TEST(WireParity, PlanarFamily) {
  expect_width_parity(gen::grid(32, 32).graph(), "planar grid 32x32");
}

TEST(WireParity, TreewidthFamily) {
  Rng rng(7);
  expect_width_parity(gen::random_ktree(700, 3, rng).graph, "3-tree n=700");
}

TEST(WireParity, ApexFamily) {
  Rng rng(11);
  gen::ApexResult ar = gen::add_apices(gen::grid(30, 30).graph(), 2, 0.10, rng);
  expect_width_parity(ar.graph, "apexed grid 30x30+2");
}

TEST(WireParity, CliqueSumFamily) {
  Rng rng(13);
  std::vector<gen::BagInput> bags;
  for (int b = 0; b < 6; ++b) {
    Graph cell = gen::grid(10, 10).graph();
    std::vector<std::vector<VertexId>> glue =
        gen::default_glue_cliques(cell, 2);
    bags.push_back(gen::BagInput{std::move(cell), std::move(glue)});
  }
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.0, rng);
  expect_width_parity(r.graph, "clique-sum of 6 grid bags");
}

}  // namespace
}  // namespace mns
