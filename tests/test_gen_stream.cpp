// Streaming-generator equivalence (DESIGN.md §9): the scale-path generators
// stream edges straight into a GraphBuilder instead of materializing
// intermediate structures (embeddings, per-bag graphs, adjacency scratch).
// Streaming must be a pure memory optimization: same seed -> the same graph
// as the materializing path, edge for edge.
#include <gtest/gtest.h>

#include <vector>

#include "gen/clique_sum.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
  }
}

TEST(GenStreaming, GridGraphMatchesEmbeddedGrid) {
  // grid_graph streams; grid() materializes the rotation system. Same vertex
  // numbering, same edge ids — the streamed path must be indistinguishable
  // to every consumer that never asks for the embedding.
  for (auto [rows, cols] : {std::pair{1, 1}, {1, 7}, {7, 1}, {2, 2}, {5, 9},
                            {16, 16}, {33, 17}}) {
    SCOPED_TRACE(testing::Message() << rows << "x" << cols);
    expect_same_graph(gen::grid_graph(rows, cols),
                      gen::grid(rows, cols).graph());
  }
}

TEST(GenStreaming, GridGraphEdgeCountExact) {
  // The streamed builder pre-reserves the exact edge count; the closed form
  // it relies on is r*(c-1) + (r-1)*c.
  for (auto [rows, cols] : {std::pair{1, 1}, {3, 4}, {64, 64}}) {
    const Graph g = gen::grid_graph(rows, cols);
    EXPECT_EQ(g.num_edges(),
              static_cast<EdgeId>(rows * (cols - 1) + (rows - 1) * cols));
  }
}

std::vector<gen::BagInput> grid_bags(int count, int side) {
  std::vector<gen::BagInput> bags;
  for (int b = 0; b < count; ++b) {
    Graph cell = gen::grid(side, side).graph();
    std::vector<std::vector<VertexId>> glue =
        gen::default_glue_cliques(cell, 2);
    bags.push_back(gen::BagInput{std::move(cell), std::move(glue)});
  }
  return bags;
}

TEST(GenStreaming, CliqueSumSameSeedSameGraph) {
  // The single-build streamed composition consumes the SAME rng draws as the
  // old build-then-retry path on the non-rollback trajectory, so a fixed
  // seed pins the output graph exactly. Run twice to prove the generator is
  // deterministic, and check the structural invariants the streamed
  // union-find pre-check must preserve: identified vertices collapse
  // (n < sum of bag sizes) and the composition stays connected even with
  // aggressive edge deletion.
  for (double drop : {0.0, 0.5}) {
    SCOPED_TRACE(drop);
    Rng rng1(42), rng2(42);
    gen::CliqueSumResult a =
        gen::compose_clique_sum(grid_bags(5, 6), 2, drop, rng1);
    gen::CliqueSumResult b =
        gen::compose_clique_sum(grid_bags(5, 6), 2, drop, rng2);
    expect_same_graph(a.graph, b.graph);
    ASSERT_EQ(a.local_to_global.size(), b.local_to_global.size());
    for (std::size_t i = 0; i < a.local_to_global.size(); ++i)
      EXPECT_EQ(a.local_to_global[i], b.local_to_global[i]);
    EXPECT_LT(a.graph.num_vertices(), static_cast<VertexId>(5 * 36));
    EXPECT_TRUE(is_connected(a.graph));
  }
}

TEST(GenStreaming, LkFamilySameSeedSameGraph) {
  gen::AlmostEmbeddableParams params;  // defaults: small planar-ish bags
  Rng rng1(7), rng2(7);
  gen::LkSample a = gen::random_lk_graph(6, params, 2, 0.1, rng1);
  gen::LkSample b = gen::random_lk_graph(6, params, 2, 0.1, rng2);
  expect_same_graph(a.graph, b.graph);
  EXPECT_TRUE(is_connected(a.graph));
  ASSERT_EQ(a.global_apices.size(), b.global_apices.size());
  for (std::size_t i = 0; i < a.global_apices.size(); ++i)
    EXPECT_EQ(a.global_apices[i], b.global_apices[i]);
}

}  // namespace
}  // namespace mns
