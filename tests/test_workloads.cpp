// Workload-catalogue tests (DESIGN.md §13): the MIS and dominating-set
// VertexPrograms against their sequential oracles, the LDD partition source
// (validity, determinism, and the cache economics of kLdd provenance), and
// the registry error paths that name their offender.
//
// Determinism bar: "mis" and "domset" RunReports are bit-identical at thread
// widths {1, 2, 4, 8} (everything but `threads`/`wall_ms`) and across a
// 2-rank loopback SocketTransport — the same parity discipline test_session
// and test_transport pin for the older workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "congest/dominating_set.hpp"
#include "congest/mis.hpp"
#include "congest/session.hpp"
#include "core/ldd.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/report_json.hpp"
#include "transport/loopback.hpp"

namespace mns {
namespace {

using congest::RunReport;
using congest::Session;
using congest::SolveOptions;
using congest::WorkloadParams;

struct FamilyCase {
  std::string name;
  Graph graph;
  StructuralCertificate cert;
};

/// One instance per certificate family (the same four shapes the transport
/// suite drives), sized so every workload runs several phases.
std::vector<FamilyCase> workload_families() {
  std::vector<FamilyCase> out;
  Rng rng(43);
  out.push_back({"grid", gen::grid(7, 7).graph(), greedy_certificate()});
  {
    gen::KTreeResult kt = gen::random_ktree(60, 3, rng);
    out.push_back(
        {"ktree3", kt.graph, treewidth_certificate(kt.decomposition)});
  }
  {
    gen::ApexResult ar = gen::add_apices(gen::grid(6, 6).graph(), 1, 0.2, rng);
    out.push_back({"grid+apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(3, 3).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 3; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back(
        {"cliquesum", cs.graph, cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

VertexId popcount(const std::vector<char>& membership) {
  VertexId c = 0;
  for (char x : membership)
    if (x) ++c;
  return c;
}

/// Bit-identical modulo the execution-only fields (thread width, wall
/// clock) — the parity equivalence the round engine guarantees.
bool same_modulo_execution(RunReport a, RunReport b) {
  a.threads = b.threads = 1;
  a.wall_ms = b.wall_ms = 0.0;
  return io::run_reports_identical(a, b);
}

// ------------------------------------------------------------------- MIS

TEST(MisWorkload, OracleVerifiedOnEveryFamily) {
  for (const FamilyCase& fam : workload_families()) {
    SCOPED_TRACE(fam.name);
    Session s(fam.graph, fam.cert);
    RunReport r = s.solve("mis", WorkloadParams{});
    const congest::MisPayload& p = r.mis();
    EXPECT_EQ(congest::verify_maximal_independent_set(fam.graph, p.in_mis), "");
    EXPECT_EQ(p.size, popcount(p.in_mis));
    EXPECT_GT(p.size, 0);
    EXPECT_GT(r.phases, 0);
    // Two rounds per phase, plus nothing else.
    EXPECT_LE(r.rounds, 2LL * r.phases);
    // A maximal independent set is at least as large as any independent
    // set's lower bound: the greedy oracle gives a sanity anchor on size.
    const std::vector<char> oracle = congest::greedy_mis(fam.graph);
    EXPECT_EQ(congest::verify_maximal_independent_set(fam.graph, oracle), "");
  }
}

TEST(MisWorkload, SeedChangesPrioritiesDeterministically) {
  // Pure-hash priorities: same (seed, phase, v) = same value, different seed
  // or phase = decorrelated stream.
  EXPECT_EQ(congest::mis_priority(7, 0, 3), congest::mis_priority(7, 0, 3));
  EXPECT_NE(congest::mis_priority(7, 0, 3), congest::mis_priority(8, 0, 3));
  EXPECT_NE(congest::mis_priority(7, 0, 3), congest::mis_priority(7, 1, 3));
  // And the resulting MIS is reproducible per seed.
  Graph g = gen::grid(9, 9).graph();
  Session a(g), b(g);
  WorkloadParams p;
  p.seed = 12345;
  RunReport ra = a.solve("mis", p);
  RunReport rb = b.solve("mis", p);
  EXPECT_TRUE(io::run_reports_identical(ra, rb));
}

// -------------------------------------------------------- dominating set

TEST(DomsetWorkload, OracleBoundedOnEveryFamily) {
  for (const FamilyCase& fam : workload_families()) {
    SCOPED_TRACE(fam.name);
    Session s(fam.graph, fam.cert);
    RunReport r = s.solve("domset", WorkloadParams{});
    const congest::DomsetPayload& p = r.domset();
    EXPECT_EQ(congest::verify_dominating_set(fam.graph, p.in_set), "");
    EXPECT_EQ(p.size, popcount(p.in_set));
    EXPECT_GT(p.size, 0);
    EXPECT_GT(r.phases, 0);
    // Approximation contract: within a small constant of the sequential
    // greedy (the exact per-family sizes are pinned by bench_workloads).
    const std::vector<char> oracle = congest::greedy_dominating_set(fam.graph);
    EXPECT_EQ(congest::verify_dominating_set(fam.graph, oracle), "");
    const VertexId oracle_size = popcount(oracle);
    EXPECT_GE(oracle_size, 1);
    EXPECT_LE(p.size, 3 * oracle_size);
  }
}

// ---------------------------------------------------- determinism parity

TEST(WorkloadParity, BitIdenticalAcrossThreadWidths) {
  for (const FamilyCase& fam : workload_families()) {
    for (const char* workload : {"mis", "domset"}) {
      SCOPED_TRACE(fam.name + std::string("/") + workload);
      congest::SessionConfig seq_cfg;
      Session seq(fam.graph, fam.cert, std::move(seq_cfg));
      RunReport ref = seq.solve(workload, WorkloadParams{});
      EXPECT_EQ(ref.threads, 1);
      for (int width : {2, 4, 8}) {
        congest::SessionConfig cfg;
        cfg.execution.threads = width;
        Session par(fam.graph, fam.cert, std::move(cfg));
        RunReport r = par.solve(workload, WorkloadParams{});
        EXPECT_EQ(r.threads, width);
        EXPECT_TRUE(same_modulo_execution(ref, r)) << "width " << width;
      }
    }
  }
}

TEST(WorkloadParity, BitIdenticalOverTwoRankSocketTransport) {
  const int ranks = 2;
  for (const FamilyCase& fam : workload_families()) {
    for (const char* workload : {"mis", "domset"}) {
      SCOPED_TRACE(fam.name + std::string("/") + workload);
      Session ref_session(fam.graph, fam.cert);
      RunReport ref = ref_session.solve(workload, WorkloadParams{});

      auto cluster = transport::make_loopback_cluster(
          fam.graph, ranks, transport::SocketTransportConfig{},
          transport::FaultConfig{});
      std::vector<RunReport> reports(static_cast<std::size_t>(ranks));
      std::vector<std::string> errors(static_cast<std::size_t>(ranks));
      std::vector<std::thread> threads;
      for (int r = 0; r < ranks; ++r) {
        threads.emplace_back([&, r] {
          try {
            Session session(fam.graph, fam.cert);
            session.set_transport(cluster[static_cast<std::size_t>(r)].get());
            reports[static_cast<std::size_t>(r)] =
                session.solve(workload, WorkloadParams{});
            session.set_transport(nullptr);
            cluster[static_cast<std::size_t>(r)]->shutdown();
          } catch (const std::exception& e) {
            errors[static_cast<std::size_t>(r)] = e.what();
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (int r = 0; r < ranks; ++r) {
        ASSERT_EQ(errors[static_cast<std::size_t>(r)], "") << "rank " << r;
        EXPECT_TRUE(io::run_reports_identical(
            ref, reports[static_cast<std::size_t>(r)]))
            << "rank " << r;
      }
    }
  }
}

// ----------------------------------------------------------------- LDD

TEST(Ldd, ValidAndDeterministicOnEveryFamily) {
  for (const FamilyCase& fam : workload_families()) {
    SCOPED_TRACE(fam.name);
    LddDecomposition a = ldd_decompose(fam.graph);
    EXPECT_EQ(validate_ldd(fam.graph, a), "");
    EXPECT_GT(a.parts.num_parts(), 0);
    EXPECT_GE(a.radius, 0);
    // Same options = bit-identical decomposition (the committed-baseline
    // contract: integer-only hash arithmetic, no libm in the draws).
    LddDecomposition b = ldd_decompose(fam.graph);
    EXPECT_TRUE(std::equal(a.parts.part_of_all().begin(),
                           a.parts.part_of_all().end(),
                           b.parts.part_of_all().begin(),
                           b.parts.part_of_all().end()));
    EXPECT_EQ(a.center, b.center);
    EXPECT_EQ(a.radius, b.radius);
    EXPECT_EQ(a.cut_edges, b.cut_edges);
    // Other knobs still produce valid decompositions.
    LddOptions tight;
    tight.beta = 0.5;
    tight.seed = 99;
    LddDecomposition c = ldd_decompose(fam.graph, tight);
    EXPECT_EQ(validate_ldd(fam.graph, c), "");
  }
}

TEST(Ldd, ForestDistancesAreRealPathLengths) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(7);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  LddDecomposition ldd = ldd_decompose(g);
  std::vector<Weight> cdist = ldd_forest_distances(ldd, g, w);
  ASSERT_EQ(cdist.size(), static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (ldd.parent[sv] == kInvalidVertex) {
      EXPECT_EQ(cdist[sv], 0);  // centers
    } else {
      // One forest hop: child distance = parent distance + edge weight.
      EXPECT_EQ(cdist[sv],
                cdist[static_cast<std::size_t>(ldd.parent[sv])] +
                    w[static_cast<std::size_t>(ldd.parent_edge[sv])]);
    }
  }
}

// ------------------------------------------------- LDD partition source

TEST(LddPartitionSource, RepeatedMstSolvesHitTheSameCacheEntry) {
  for (const FamilyCase& fam : workload_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(71);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
    Session s(fam.graph, fam.cert);
    SolveOptions ldd_opt;
    ldd_opt.partition = congest::PartitionSource::kLdd;

    RunReport cold = s.solve(congest::Mst{w}, ldd_opt);
    // Every aggregation resolves to the ONE LDD shortcut: exactly one miss
    // builds it, everything after (and every later solve) hits.
    EXPECT_EQ(cold.cache_misses, 1);
    EXPECT_EQ(s.cache_size(), 1u);

    RunReport warm = s.solve(congest::Mst{w}, ldd_opt);
    EXPECT_GT(warm.cache_hits, 0);
    EXPECT_EQ(warm.cache_misses, 0);
    EXPECT_EQ(warm.charged_construction_rounds, 0);
    EXPECT_EQ(warm.rounds, cold.rounds);
    EXPECT_EQ(warm.mst().edges, cold.mst().edges);

    // The MST itself does not depend on where the shortcuts came from:
    // shortcuts change round counts, never payloads.
    Session plain(fam.graph, fam.cert);
    RunReport base = plain.solve(congest::Mst{w});
    EXPECT_EQ(base.mst().edges, cold.mst().edges);
    EXPECT_EQ(base.mst().fragment_of, cold.mst().fragment_of);
  }
}

TEST(LddPartitionSource, ApproxSsspPinnedCellsAreCacheHitsWhenWarm) {
  for (const FamilyCase& fam : workload_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(73);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
    Session s(fam.graph, fam.cert);
    SolveOptions ldd_opt;
    ldd_opt.partition = congest::PartitionSource::kLdd;
    congest::ApproxSssp q{w, 0};

    RunReport cold = s.solve(q, ldd_opt);
    EXPECT_EQ(cold.cache_misses, 1);
    EXPECT_EQ(cold.phases, 1);  // pinned cells never repartition

    RunReport warm = s.solve(q, ldd_opt);
    EXPECT_GT(warm.cache_hits, 0);
    EXPECT_EQ(warm.cache_misses, 0);
    EXPECT_EQ(warm.charged_construction_rounds, 0);
    EXPECT_EQ(warm.sssp().dist, cold.sssp().dist);

    // Quiescence under the rounded weights is exact whatever the cells:
    // the distances equal the default wavefront-partition run's.
    Session plain(fam.graph, fam.cert);
    RunReport base = plain.solve(q);
    EXPECT_EQ(base.sssp().dist, cold.sssp().dist);

    // A DIFFERENT source over the same core still hits the one LDD entry.
    congest::ApproxSssp q2{w, fam.graph.num_vertices() / 2};
    RunReport other = s.solve(q2, ldd_opt);
    EXPECT_GT(other.cache_hits, 0);
    EXPECT_EQ(other.cache_misses, 0);
    EXPECT_EQ(other.charged_construction_rounds, 0);
  }
}

// ------------------------------------------------------------- registry

TEST(WorkloadRegistry, BuiltinNamesAreTheCatalogue) {
  const std::vector<std::string> expected = {
      "bfs", "domset", "mincut", "mis",
      "mst", "mst.ghs", "sssp.approx", "sssp.exact"};
  EXPECT_EQ(congest::builtin_workload_names(), expected);
  Graph g = gen::grid(4, 4).graph();
  Session s(g);
  EXPECT_EQ(s.workload_names(), expected);
  congest::SolveHandle h(s.core_ptr());
  EXPECT_EQ(h.workload_names(), expected);
  EXPECT_TRUE(s.has_workload("mis"));
  EXPECT_TRUE(h.has_workload("domset"));
}

TEST(WorkloadRegistry, UnknownWorkloadThrowsNamingTheOffender) {
  Graph g = gen::grid(4, 4).graph();
  Session s(g);
  try {
    (void)s.solve("nosuch", WorkloadParams{});
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("nosuch"), std::string::npos);
  }
  congest::SolveHandle h(s.core_ptr());
  try {
    (void)h.solve("nosuch.either", WorkloadParams{});
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("nosuch.either"), std::string::npos);
  }
}

TEST(WorkloadRegistry, DuplicateRegistrationThrowsNamingTheOffender) {
  Graph g = gen::grid(4, 4).graph();
  Session s(g);
  try {
    s.register_workload("mis", [](Session&, const WorkloadParams&,
                                  const SolveOptions&) { return RunReport{}; });
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("'mis'"), std::string::npos);
  }
  congest::SolveHandle h(s.core_ptr());
  try {
    h.register_workload("domset",
                        [](congest::SolveHandle&, const WorkloadParams&,
                           const SolveOptions&) { return RunReport{}; });
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("'domset'"), std::string::npos);
  }
}

}  // namespace
}  // namespace mns
