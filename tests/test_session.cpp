// Session contract tests: the uniform solve surface, the workload registry,
// and above all the shortcut-cache semantics — hits on identical partition
// fingerprints, invalidation on repartition / certificate change / tree
// change, LRU eviction, and bit-identical results (edges / dist / cut value
// / measured rounds) between cached and cold runs on every generator
// family. Construction charging is the ONLY thing allowed to differ between
// warm and cold (charged once per distinct partition, DESIGN.md §2, §5).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"
#include "io/report_json.hpp"

namespace mns {
namespace {

using congest::RunReport;
using congest::Session;

std::vector<congest::AggValue> ramp_values(VertexId n) {
  std::vector<congest::AggValue> init(n);
  for (VertexId v = 0; v < n; ++v)
    init[v] = {static_cast<Weight>((v * 48271) % 9973), v};
  return init;
}

TEST(SessionCache, HitOnIdenticalPartitionFingerprint) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(5);
  Partition parts = voronoi_partition(g, 5, rng);
  Session s(g);
  RunReport first = s.solve(congest::Aggregate{parts, ramp_values(64)});
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.cache_misses, 1);
  EXPECT_GT(first.charged_construction_rounds, 0);

  RunReport second = s.solve(congest::Aggregate{parts, ramp_values(64)});
  EXPECT_EQ(second.cache_hits, 1);
  EXPECT_EQ(second.cache_misses, 0);
  // Already charged when first built: a hit re-pays nothing.
  EXPECT_EQ(second.charged_construction_rounds, 0);
  // Same shortcut, same values -> identical measured behavior and result.
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.aggregate().min_of_part, second.aggregate().min_of_part);
}

TEST(SessionCache, MissOnRepartition) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(5);
  Partition parts_a = voronoi_partition(g, 5, rng);
  Partition parts_b = voronoi_partition(g, 7, rng);
  Session s(g);
  (void)s.solve(congest::Aggregate{parts_a, ramp_values(64)});
  RunReport other = s.solve(congest::Aggregate{parts_b, ramp_values(64)});
  EXPECT_EQ(other.cache_hits, 0);
  EXPECT_EQ(other.cache_misses, 1);
  // Both partitions now live in the cache.
  EXPECT_EQ(s.cache_size(), 2u);
  RunReport again = s.solve(congest::Aggregate{parts_a, ramp_values(64)});
  EXPECT_EQ(again.cache_hits, 1);
}

TEST(SessionCache, InvalidationOnCertificateChange) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(9);
  Partition parts = voronoi_partition(g, 4, rng);
  Session s(g, greedy_certificate());
  (void)s.solve(congest::Aggregate{parts, ramp_values(64)});
  s.set_certificate(steiner_certificate());
  // Same partition, new structural knowledge: must rebuild, not serve the
  // greedy shortcut back.
  RunReport after = s.solve(congest::Aggregate{parts, ramp_values(64)});
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_EQ(after.cache_misses, 1);
}

TEST(SessionCache, InvalidationOnTreeFactoryChange) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(11);
  Partition parts = voronoi_partition(g, 4, rng);
  Session s(g);
  (void)s.solve(congest::Aggregate{parts, ramp_values(64)});
  s.set_tree_factory(
      [](const Graph& gg) { return RootedTree::from_bfs(bfs(gg, 0), 0); });
  RunReport after = s.solve(congest::Aggregate{parts, ramp_values(64)});
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_EQ(after.cache_misses, 1);
}

TEST(SessionCache, LruEvictsLeastRecentlyUsed) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(13);
  Partition a = voronoi_partition(g, 3, rng);
  Partition b = voronoi_partition(g, 5, rng);
  Partition c = voronoi_partition(g, 7, rng);
  congest::SessionConfig cfg;
  cfg.cache_capacity = 2;
  Session s(g, greedy_certificate(), std::move(cfg));
  (void)s.solve(congest::Aggregate{a, ramp_values(64)});
  (void)s.solve(congest::Aggregate{b, ramp_values(64)});
  (void)s.solve(congest::Aggregate{c, ramp_values(64)});  // evicts a
  EXPECT_EQ(s.cache_size(), 2u);
  RunReport again_a = s.solve(congest::Aggregate{a, ramp_values(64)});
  EXPECT_EQ(again_a.cache_misses, 1);  // was evicted
  RunReport again_c = s.solve(congest::Aggregate{c, ramp_values(64)});
  EXPECT_EQ(again_c.cache_hits, 1);  // still resident
}

TEST(SessionCache, AnalyzeSeedsTheCache) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(17);
  Partition parts = voronoi_partition(g, 4, rng);
  Session s(g);
  BuildResult br = s.analyze(parts);
  EXPECT_GE(br.metrics.quality, 1);
  RunReport rep = s.solve(congest::Aggregate{parts, ramp_values(64)});
  EXPECT_EQ(rep.cache_hits, 1);
  EXPECT_EQ(rep.cache_misses, 0);
}

// --- warm vs cold parity on every generator family -----------------------

struct FamilyCase {
  std::string name;
  Graph graph;
  StructuralCertificate cert;
};

std::vector<FamilyCase> parity_families() {
  std::vector<FamilyCase> out;
  Rng rng(23);
  out.push_back({"grid", gen::grid(9, 9).graph(), greedy_certificate()});
  out.push_back({"maximal_planar", gen::random_maximal_planar(100, rng).graph(),
                 greedy_certificate()});
  {
    gen::KTreeResult kt = gen::random_ktree(90, 3, rng);
    out.push_back({"ktree3", kt.graph,
                   treewidth_certificate(kt.decomposition)});
  }
  {
    gen::ApexResult ar = gen::add_apices(gen::grid(7, 7).graph(), 1, 0.2, rng);
    out.push_back({"grid+apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(4, 4).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 5; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back({"cliquesum", cs.graph,
                   cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

TEST(SessionParity, CachedAndColdRunsBitIdenticalOnEveryFamily) {
  congest::SolveOptions cold_opt;
  cold_opt.use_cache = false;
  for (FamilyCase& fam : parity_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(31);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);

    Session warm(fam.graph, fam.cert);
    Session cold(fam.graph, fam.cert);

    // MST: warm twice (second leans on the cache), cold once.
    RunReport w1 = warm.solve(congest::Mst{w});
    RunReport w2 = warm.solve(congest::Mst{w});
    RunReport c1 = cold.solve(congest::Mst{w}, cold_opt);
    EXPECT_EQ(w1.mst().edges, c1.mst().edges);
    EXPECT_EQ(w2.mst().edges, c1.mst().edges);
    EXPECT_EQ(w1.rounds, c1.rounds);  // measured rounds never depend on cache
    EXPECT_EQ(w2.rounds, c1.rounds);
    EXPECT_EQ(w2.cache_misses, 0);    // every partition already resident
    EXPECT_GT(w2.cache_hits, 0);
    EXPECT_EQ(w2.charged_construction_rounds, 0);
    EXPECT_LE(w1.charged_construction_rounds,
              c1.charged_construction_rounds);

    // Approx SSSP: identical queries produce identical distance vectors and
    // identical measured rounds; the repeat hits the cache.
    congest::ApproxSssp q{w, 0};
    q.epsilon = 0.25;
    RunReport s1 = warm.solve(q);
    RunReport s2 = warm.solve(q);
    RunReport sc = cold.solve(q, cold_opt);
    EXPECT_EQ(s1.sssp().dist, sc.sssp().dist);
    EXPECT_EQ(s2.sssp().dist, sc.sssp().dist);
    EXPECT_EQ(s1.rounds, sc.rounds);
    EXPECT_EQ(s2.rounds, sc.rounds);
    EXPECT_GT(s2.cache_hits, 0);
    EXPECT_EQ(s2.charged_construction_rounds, 0);

    // Min cut: same value, same measured rounds, warm repeat fully cached.
    congest::MinCut mq{w};
    mq.num_trees = 4;
    RunReport m1 = warm.solve(mq);
    RunReport m2 = warm.solve(mq);
    RunReport mc = cold.solve(mq, cold_opt);
    EXPECT_EQ(m1.min_cut().value, mc.min_cut().value);
    EXPECT_EQ(m2.min_cut().value, mc.min_cut().value);
    EXPECT_EQ(m1.rounds, mc.rounds);
    EXPECT_EQ(m2.rounds, mc.rounds);
    EXPECT_GT(m2.cache_hits, 0);
  }
}

// --- thread parity: the DESIGN.md §7 bit-identical contract ---------------

// For every certificate family, run MST, min-cut and approx-SSSP on seeded
// random instances at threads=1 and at a genuinely parallel width (at least
// 4, or hardware_concurrency if larger) and require the RunReports to be
// bit-identical in everything but wall clock: rounds, messages, charges,
// phase counts and full payloads. This is the randomized parity sweep that
// pins the vertex-parallel round engine to the sequential oracle.
TEST(SessionParity, ThreadedRunsBitIdenticalToSequentialOnEveryFamily) {
  const int wide = std::max(
      4, static_cast<int>(std::thread::hardware_concurrency()));
  for (FamilyCase& fam : parity_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(61);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);

    congest::SessionConfig seq_cfg, par_cfg;
    par_cfg.execution.threads = wide;
    Session seq(fam.graph, fam.cert, std::move(seq_cfg));
    Session par(fam.graph, fam.cert, std::move(par_cfg));

    auto expect_same = [&](const RunReport& a, const RunReport& b) {
      EXPECT_EQ(a.rounds, b.rounds);
      EXPECT_EQ(a.messages, b.messages);
      EXPECT_EQ(a.charged_construction_rounds, b.charged_construction_rounds);
      EXPECT_EQ(a.phases, b.phases);
      EXPECT_EQ(a.aggregations, b.aggregations);
    };

    RunReport m1 = seq.solve(congest::Mst{w});
    RunReport mp = par.solve(congest::Mst{w});
    EXPECT_EQ(m1.threads, 1);
    EXPECT_EQ(mp.threads, wide);
    expect_same(m1, mp);
    EXPECT_EQ(m1.mst().edges, mp.mst().edges);
    EXPECT_EQ(m1.mst().fragment_of, mp.mst().fragment_of);

    congest::MinCut mq{w};
    mq.num_trees = 3;
    RunReport c1 = seq.solve(mq);
    RunReport cp = par.solve(mq);
    expect_same(c1, cp);
    EXPECT_EQ(c1.min_cut().value, cp.min_cut().value);

    congest::ApproxSssp q{w, 0};
    RunReport s1 = seq.solve(q);
    RunReport sp = par.solve(q);
    expect_same(s1, sp);
    EXPECT_EQ(s1.sssp().dist, sp.sssp().dist);
    EXPECT_EQ(s1.sssp().jumps, sp.sssp().jumps);
  }
}

// The per-solve override: one session can interleave sequential and
// threaded solves and every result stays identical.
TEST(SessionParity, PerSolveThreadOverrideMatchesSessionDefault) {
  Graph g = gen::grid(20, 20).graph();
  Rng rng(67);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s(g);
  congest::SolveOptions threaded;
  threaded.threads = 4;
  RunReport a = s.solve(congest::Mst{w});
  RunReport b = s.solve(congest::Mst{w}, threaded);
  EXPECT_EQ(a.threads, 1);
  EXPECT_EQ(b.threads, 4);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.mst().edges, b.mst().edges);
  // BFS and exact SSSP run through the same engine: cover them too.
  RunReport bf1 = s.solve(congest::Bfs{0});
  RunReport bf2 = s.solve(congest::Bfs{0}, threaded);
  EXPECT_EQ(bf1.rounds, bf2.rounds);
  EXPECT_EQ(bf1.bfs().dist, bf2.bfs().dist);
  EXPECT_EQ(bf1.bfs().parent, bf2.bfs().parent);
  RunReport e1 = s.solve(congest::ExactSssp{w, 0});
  RunReport e2 = s.solve(congest::ExactSssp{w, 0}, threaded);
  EXPECT_EQ(e1.rounds, e2.rounds);
  EXPECT_EQ(e1.sssp().dist, e2.sssp().dist);
}

// --- registry ------------------------------------------------------------

TEST(SessionRegistry, BuiltinsMirrorTypedSolves) {
  Graph g = gen::grid(6, 6).graph();
  Rng rng(37);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s(g);
  for (const char* name :
       {"bfs", "mincut", "mst", "mst.ghs", "sssp.approx", "sssp.exact"})
    EXPECT_TRUE(s.has_workload(name)) << name;

  Session::WorkloadParams params;
  params.weights = w;
  RunReport by_name = s.solve("mst", params);
  EXPECT_EQ(by_name.workload, "mst");
  RunReport typed = s.solve(congest::Mst{w});
  EXPECT_EQ(by_name.mst().edges, typed.mst().edges);
  EXPECT_EQ(by_name.rounds, typed.rounds);

  params.source = 3;
  RunReport sssp = s.solve("sssp.exact", params);
  EXPECT_EQ(sssp.sssp().dist, dijkstra(g, w, 3).dist);
}

TEST(SessionRegistry, UnknownAndDuplicateNamesThrow) {
  Graph g = gen::path(4);
  Session s(g);
  Session::WorkloadParams params;
  EXPECT_THROW((void)s.solve("no-such-workload", params), InvariantViolation);
  EXPECT_THROW(s.register_workload("mst", [](Session& ss,
                                             const Session::WorkloadParams& p,
                                             const congest::SolveOptions& o) {
    return ss.solve(congest::Mst{p.weights}, o);
  }),
               InvariantViolation);
  EXPECT_THROW(s.register_workload("", nullptr), InvariantViolation);
}

TEST(SessionRegistry, CustomWorkloadsCompose) {
  Graph g = gen::grid(5, 5).graph();
  Rng rng(41);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s(g);
  // A composite workload: MST then min-cut, reporting the min-cut.
  s.register_workload("audit", [](Session& ss,
                                  const Session::WorkloadParams& p,
                                  const congest::SolveOptions& o) {
    (void)ss.solve(congest::Mst{p.weights}, o);
    return ss.solve(congest::MinCut{p.weights, p.num_trees}, o);
  });
  ASSERT_TRUE(s.has_workload("audit"));
  std::vector<std::string> names = s.workload_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  Session::WorkloadParams params;
  params.weights = w;
  params.num_trees = 3;
  RunReport rep = s.solve("audit", params);
  EXPECT_EQ(rep.workload, "audit");
  EXPECT_GE(rep.min_cut().value, 1);
}

TEST(SessionCache, EvictionCounterSurfacesChurnPressure) {
  Graph g = gen::grid(8, 8).graph();
  Rng rng(29);
  Partition a = voronoi_partition(g, 3, rng);
  Partition b = voronoi_partition(g, 5, rng);
  Partition c = voronoi_partition(g, 7, rng);
  congest::SessionConfig cfg;
  cfg.cache_capacity = 2;
  Session s(g, greedy_certificate(), std::move(cfg));
  RunReport first = s.solve(congest::Aggregate{a, ramp_values(64)});
  EXPECT_EQ(first.cache_evictions, 0);
  (void)s.solve(congest::Aggregate{b, ramp_values(64)});
  RunReport third = s.solve(congest::Aggregate{c, ramp_values(64)});
  EXPECT_EQ(third.cache_evictions, 1);  // this run's insert pushed `a` out
  EXPECT_EQ(s.cache_evictions(), 1);
  EXPECT_EQ(s.core_ptr()->cache_stats().evictions, 1);
  // The counter is part of the canonical report JSON (mnsctl solve output,
  // baseline diffs).
  EXPECT_NE(io::run_report_to_json(third).find("\"cache_evictions\": 1"),
            std::string::npos);
  // A hit run evicts nothing.
  RunReport again_c = s.solve(congest::Aggregate{c, ramp_values(64)});
  EXPECT_EQ(again_c.cache_hits, 1);
  EXPECT_EQ(again_c.cache_evictions, 0);
  EXPECT_EQ(s.cache_evictions(), 1);
}

// --- partition fingerprints (the cache key, DESIGN.md §5) -----------------

TEST(PartitionFingerprint, GoldenValuesAreStable) {
  // Pinned FNV-1a values: a silent change to the fingerprint recipe would
  // orphan every snapshot's cache section (restore re-keys by fingerprint),
  // so the recipe is part of the persistence contract.
  const std::vector<PartId> parts{0, 0, 1, 1, kNoPart};
  EXPECT_EQ(congest::SolverCore::partition_fingerprint(2, parts),
            0xa69512bc3d6648bfULL);
  const std::vector<PartId> single{0};
  EXPECT_EQ(congest::SolverCore::partition_fingerprint(1, single),
            0x392209f14dea4c24ULL);
}

TEST(PartitionFingerprint, SensitiveToEveryInput) {
  const std::vector<PartId> base{0, 0, 1, 1, kNoPart};
  const std::uint64_t key = congest::SolverCore::partition_fingerprint(2, base);
  // num_parts is mixed in even when part_of is unchanged.
  EXPECT_NE(congest::SolverCore::partition_fingerprint(3, base), key);
  // Moving a vertex between parts, relabeling the parts, or covering a
  // previously uncovered vertex all re-key (no false cache hits).
  const std::vector<PartId> permuted{0, 1, 0, 1, kNoPart};
  EXPECT_NE(congest::SolverCore::partition_fingerprint(2, permuted), key);
  const std::vector<PartId> relabeled{1, 1, 0, 0, kNoPart};
  EXPECT_NE(congest::SolverCore::partition_fingerprint(2, relabeled), key);
  const std::vector<PartId> covered{0, 0, 1, 1, 1};
  EXPECT_NE(congest::SolverCore::partition_fingerprint(2, covered), key);
}

TEST(SessionReport, PayloadAccessorsAreChecked) {
  Graph g = gen::grid(5, 5).graph();
  Rng rng(43);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s(g);
  RunReport rep = s.solve(congest::Mst{w});
  EXPECT_NO_THROW((void)rep.mst());
  EXPECT_THROW((void)rep.sssp(), InvariantViolation);
  EXPECT_THROW((void)rep.min_cut(), InvariantViolation);
  EXPECT_THROW((void)rep.bfs(), InvariantViolation);
  EXPECT_THROW((void)rep.aggregate(), InvariantViolation);
}

}  // namespace
}  // namespace mns
