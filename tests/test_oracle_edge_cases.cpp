// Edge cases of the bag oracles (the local constructors of Theorems 5-8):
// empty terminal sets, all-apex instances, singleton trees, and oracle
// contract conformance (set counts, local-id ranges).
#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "gen/basic.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

RootedTree star_tree(VertexId leaves) {
  std::vector<VertexId> parent(leaves + 1, 0);
  parent[0] = kInvalidVertex;
  return RootedTree(0, parent);
}

LocalInstance star_instance(VertexId leaves,
                            std::vector<std::vector<VertexId>> terminal_sets,
                            std::vector<VertexId> apices = {}) {
  return LocalInstance{star_tree(leaves), std::move(terminal_sets),
                       std::move(apices)};
}

TEST(Oracles, AllReturnOneOutputPerTerminalSet) {
  LocalInstance inst = star_instance(6, {{1, 2}, {3}, {}, {4, 5, 6}});
  for (auto make : {make_trivial_oracle, make_steiner_oracle,
                    make_greedy_oracle}) {
    BagOracle oracle = make();
    auto out = oracle(inst);
    EXPECT_EQ(out.size(), 4u);
    // Every returned edge key is a valid non-root local vertex.
    for (const auto& es : out)
      for (VertexId v : es) {
        EXPECT_GT(v, 0);
        EXPECT_LE(v, 6);
      }
  }
}

TEST(Oracles, EmptyTerminalSetGetsNothingFromSteiner) {
  LocalInstance inst = star_instance(4, {{}, {1, 2}});
  auto out = make_steiner_oracle()(inst);
  EXPECT_TRUE(out[0].empty());
  EXPECT_FALSE(out[1].empty());
}

TEST(Oracles, SingletonTerminalNeedsNoEdges) {
  LocalInstance inst = star_instance(4, {{3}});
  EXPECT_TRUE(make_steiner_oracle()(inst)[0].empty());
  EXPECT_TRUE(make_greedy_oracle()(inst)[0].empty());
}

TEST(ApexOracle, AllApexInstanceGivesWholeTreeToApexSets) {
  // Tree = star; the hub is an apex; one set contains it.
  LocalInstance inst = star_instance(5, {{0, 1}, {2, 3}}, {0});
  auto out = make_apex_oracle(make_greedy_oracle())(inst);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 5u);  // whole tree for the apex-containing set
  // The other set intersects only 2 (singleton) cells, so Lemma 5's
  // elimination legitimately drops it: it receives no edges and its 2 block
  // components stay within the "missing <= 2 cells" budget.
  EXPECT_LE(out[1].size(), 5u);
}

TEST(ApexOracle, EveryVertexApexDegenerate) {
  // All vertices are apices: every set containing any vertex gets the tree;
  // cells are empty and nothing crashes.
  LocalInstance inst = star_instance(3, {{1}, {2, 3}}, {0, 1, 2, 3});
  auto out = make_apex_oracle(make_greedy_oracle())(inst);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 3u);
  EXPECT_EQ(out[1].size(), 3u);
}

TEST(ApexOracle, SingleVertexTree) {
  std::vector<VertexId> parent{kInvalidVertex};
  LocalInstance inst{RootedTree(0, parent), {{0}}, {}};
  auto out = make_apex_oracle(make_greedy_oracle())(inst);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

TEST(ApexOracle, NoTerminalSetsNoCrash) {
  LocalInstance inst = star_instance(3, {}, {0});
  auto out = make_apex_oracle(make_trivial_oracle())(inst);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace mns
