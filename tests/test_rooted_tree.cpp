// Tests for RootedTree: construction, LCA, ancestors, heavy-light chains.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {
namespace {

// A fixed tree: 0 -> {1, 2}; 1 -> {3, 4}; 2 -> {5}; 3 -> {6}; 5 -> {7, 8}.
RootedTree sample_tree() {
  std::vector<VertexId> parent{kInvalidVertex, 0, 0, 1, 1, 2, 3, 5, 5};
  return RootedTree(0, parent);
}

TEST(RootedTree, DepthsAndHeight) {
  RootedTree t = sample_tree();
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.depth(4), 2);
  EXPECT_EQ(t.depth(6), 3);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.root(), 0);
}

TEST(RootedTree, ChildrenAndSubtreeSizes) {
  RootedTree t = sample_tree();
  auto kids = t.children(1);
  EXPECT_EQ(std::vector<VertexId>(kids.begin(), kids.end()),
            (std::vector<VertexId>{3, 4}));
  EXPECT_EQ(t.subtree_size(0), 9);
  EXPECT_EQ(t.subtree_size(1), 4);
  EXPECT_EQ(t.subtree_size(5), 3);
  EXPECT_EQ(t.subtree_size(6), 1);
}

TEST(RootedTree, PreorderParentsFirst) {
  RootedTree t = sample_tree();
  std::vector<int> position(9);
  const auto& pre = t.preorder();
  ASSERT_EQ(pre.size(), 9u);
  for (int i = 0; i < 9; ++i) position[pre[i]] = i;
  for (VertexId v = 1; v < 9; ++v)
    EXPECT_LT(position[t.parent(v)], position[v]);
}

TEST(RootedTree, AncestorQueries) {
  RootedTree t = sample_tree();
  EXPECT_TRUE(t.is_ancestor(0, 6));
  EXPECT_TRUE(t.is_ancestor(1, 6));
  EXPECT_TRUE(t.is_ancestor(6, 6));
  EXPECT_FALSE(t.is_ancestor(2, 6));
  EXPECT_FALSE(t.is_ancestor(6, 1));
}

TEST(RootedTree, Lca) {
  RootedTree t = sample_tree();
  EXPECT_EQ(t.lca(6, 4), 1);
  EXPECT_EQ(t.lca(6, 7), 0);
  EXPECT_EQ(t.lca(7, 8), 5);
  EXPECT_EQ(t.lca(3, 3), 3);
  EXPECT_EQ(t.lca(0, 8), 0);
}

TEST(RootedTree, KthAncestor) {
  RootedTree t = sample_tree();
  EXPECT_EQ(t.kth_ancestor(6, 0), 6);
  EXPECT_EQ(t.kth_ancestor(6, 1), 3);
  EXPECT_EQ(t.kth_ancestor(6, 2), 1);
  EXPECT_EQ(t.kth_ancestor(6, 3), 0);
  EXPECT_THROW((void)t.kth_ancestor(6, 4), std::invalid_argument);
}

TEST(RootedTree, HeavyChainsCoverRootPathsInLogChains) {
  RootedTree t = sample_tree();
  // Chain heads partition vertices; head of root's chain is root.
  EXPECT_EQ(t.chain_head(0), 0);
  // The heavy child of 0 is 1 (subtree 4 > subtree 3 of vertex 2).
  EXPECT_EQ(t.chain_head(1), 0);
  // Heavy path continues into 3 (subtree 2 > subtree 1 of vertex 4).
  EXPECT_EQ(t.chain_head(3), 0);
  EXPECT_EQ(t.chain_head(6), 0);
  // Vertex 2 starts its own chain.
  EXPECT_EQ(t.chain_head(2), 2);
}

TEST(RootedTree, RejectsBadInput) {
  // Cycle.
  std::vector<VertexId> cyc{kInvalidVertex, 2, 1};
  EXPECT_THROW(RootedTree(0, cyc), std::invalid_argument);
  // Root with a parent.
  std::vector<VertexId> rooted{1, kInvalidVertex};
  EXPECT_THROW(RootedTree(0, rooted), std::invalid_argument);
  // Root out of range.
  EXPECT_THROW(RootedTree(5, std::vector<VertexId>{kInvalidVertex}),
               std::invalid_argument);
}

TEST(RootedTree, FromBfsBindsEdges) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  b.add_edge(3, 4);  // non-tree edge
  Graph g = b.build();
  BfsResult r = bfs(g, 0);
  RootedTree t = RootedTree::from_bfs(r, 0);
  EXPECT_EQ(t.height(), 2);
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_EQ(g.other_endpoint(t.parent_edge(v), v), t.parent(v));
  }
}

TEST(RootedTree, FromBfsRejectsUnreached) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g = b.build();
  BfsResult r = bfs(g, 0);
  EXPECT_THROW(RootedTree::from_bfs(r, 0), std::invalid_argument);
}

TEST(RootedTree, PathEdgesAndVertices) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(3, 4);
  b.add_edge(0, 5);
  Graph g = b.build();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);

  std::vector<VertexId> pv = t.path_vertices(2, 4);
  EXPECT_EQ(pv.front(), 2);
  EXPECT_EQ(pv.back(), 4);
  ASSERT_EQ(pv.size(), 4u);
  EXPECT_EQ(pv[1], 1);  // through the LCA

  std::vector<EdgeId> pe = t.path_edges(2, 4);
  EXPECT_EQ(pe.size(), 3u);
  // Consecutive path edges share endpoints (form a walk 2..4).
  EXPECT_EQ(pe.size() + 1, pv.size());
  for (std::size_t i = 0; i < pe.size(); ++i) {
    const Edge& e = g.edge(pe[i]);
    EXPECT_TRUE((e.u == pv[i] && e.v == pv[i + 1]) ||
                (e.v == pv[i] && e.u == pv[i + 1]));
  }

  EXPECT_EQ(t.path_edges(5, 5).size(), 0u);
  EXPECT_EQ(t.path_vertices(5, 5), std::vector<VertexId>{5});
}

// Property sweep: LCA via binary lifting agrees with the naive walk-up LCA
// on random BFS trees, and chain counts along root paths are logarithmic.
class TreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertyTest, LcaMatchesNaiveAndChainsAreFew) {
  Rng rng(GetParam());
  const VertexId n = 300;
  GraphBuilder b(n);
  // Random tree by attaching each vertex to a random earlier vertex.
  for (VertexId v = 1; v < n; ++v) {
    std::uniform_int_distribution<VertexId> pick(0, v - 1);
    b.add_edge(pick(rng), v);
  }
  Graph g = b.build();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);

  auto naive_lca = [&](VertexId u, VertexId v) {
    while (u != v) {
      if (t.depth(u) < t.depth(v))
        v = t.parent(v);
      else
        u = t.parent(u);
    }
    return u;
  };
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  for (int i = 0; i < 200; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    EXPECT_EQ(t.lca(u, v), naive_lca(u, v));
  }

  // Heavy-light: number of chain changes on any root path is <= log2(n)+1.
  for (int i = 0; i < 50; ++i) {
    VertexId v = pick(rng);
    int changes = 0;
    while (v != t.root()) {
      VertexId head = t.chain_head(v);
      if (head != t.root() || t.chain_head(t.root()) != head) ++changes;
      v = (head == v) ? t.parent(v) : head;
    }
    EXPECT_LE(changes, 10);  // log2(300) ~ 8.2, +1 slack
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest,
                         ::testing::Values(11, 23, 37, 58, 71));

}  // namespace
}  // namespace mns
