// Unit and property tests for the graph substrate: Graph/GraphBuilder,
// traversals, connectivity, diameter, induced subgraphs, and UnionFind.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <type_traits>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace mns {
namespace {

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph complete_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

TEST(GraphBuilder, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphBuilder, SingleVertexNoEdges) {
  Graph g = GraphBuilder(1).build();
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(-1, 0), std::invalid_argument);
}

TEST(GraphBuilder, RejectsNegativeVertexCount) {
  EXPECT_THROW(GraphBuilder(-1), std::invalid_argument);
}

TEST(GraphBuilder, ThrowsTypedGraphError) {
  // The typed error is the catchable contract (mnsctl and the update layer
  // distinguish construction failures from generic invalid_argument); it
  // remains AN invalid_argument so existing catch sites keep working.
  static_assert(std::is_base_of_v<std::invalid_argument, GraphError>);
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), GraphError);
  EXPECT_THROW(b.add_edge(0, 3), GraphError);
  EXPECT_THROW(b.add_edge(-1, 0), GraphError);
  EXPECT_THROW(GraphBuilder(-1), GraphError);
  try {
    b.add_edge(2, 5);
    FAIL() << "out-of-range add_edge did not throw";
  } catch (const GraphError& e) {
    EXPECT_NE(std::string(e.what()).find("add_edge"), std::string::npos);
  }
}

TEST(GraphBuilder, MergesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphBuilder, BuildTwiceThrows) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  (void)b.build();
  EXPECT_THROW((void)b.build(), std::logic_error);
}

TEST(Graph, NormalizesEdgeEndpoints) {
  GraphBuilder b(4);
  b.add_edge(3, 1);
  Graph g = b.build();
  EXPECT_EQ(g.edge(0).u, 1);
  EXPECT_EQ(g.edge(0).v, 3);
}

TEST(Graph, NeighborsSortedAndConsistent) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  Graph g = b.build();
  auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
  auto eids = g.incident_edges(2);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    EXPECT_EQ(g.other_endpoint(eids[i], 2), nbrs[i]);
}

TEST(Graph, FindEdge) {
  Graph g = cycle_graph(5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EdgeId e = g.find_edge(2, 3);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.other_endpoint(e, 2), 3);
}

TEST(Graph, OtherEndpointRejectsNonIncident) {
  Graph g = path_graph(3);
  EdgeId e = g.find_edge(0, 1);
  EXPECT_THROW((void)g.other_endpoint(e, 2), InvariantViolation);
}

TEST(Graph, CompleteGraphDegrees) {
  Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6);
}

TEST(Bfs, PathDistances) {
  Graph g = path_graph(6);
  BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[0], kInvalidVertex);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(r.parent[v], v - 1);
  EXPECT_EQ(r.max_distance(), 5);
}

TEST(Bfs, ParentEdgeBindsToGraph) {
  Graph g = cycle_graph(6);
  BfsResult r = bfs(g, 0);
  for (VertexId v = 1; v < 6; ++v) {
    ASSERT_NE(r.parent_edge[v], kInvalidEdge);
    EXPECT_EQ(g.other_endpoint(r.parent_edge[v], v), r.parent[v]);
  }
}

TEST(Bfs, DisconnectedMarksUnreached) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Graph g = b.build();
  BfsResult r = bfs(g, 0);
  EXPECT_TRUE(r.reached(1));
  EXPECT_FALSE(r.reached(2));
  EXPECT_FALSE(r.reached(3));
}

TEST(Bfs, MultiSourceClaimsNearest) {
  Graph g = path_graph(10);
  std::vector<VertexId> sources{0, 9};
  BfsResult r = bfs_multi(g, sources);
  EXPECT_EQ(r.source[2], 0);
  EXPECT_EQ(r.source[8], 9);
  EXPECT_EQ(r.dist[4], 4);
  EXPECT_EQ(r.dist[6], 3);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  Graph g = path_graph(3);
  EXPECT_THROW(bfs(g, 7), std::invalid_argument);
}

TEST(Components, CountsAndLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(4, 5);
  Graph g = b.build();
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_EQ(c.label[4], c.label[5]);
}

TEST(Components, ConnectedChecks) {
  EXPECT_TRUE(is_connected(cycle_graph(5)));
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
  GraphBuilder b(2);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(ConnectedSubset, DetectsConnectivity) {
  Graph g = cycle_graph(8);
  std::vector<VertexId> arc{1, 2, 3};
  EXPECT_TRUE(is_connected_subset(g, arc));
  std::vector<VertexId> split{1, 2, 5, 6};
  EXPECT_FALSE(is_connected_subset(g, split));
  std::vector<VertexId> whole{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(is_connected_subset(g, whole));
  EXPECT_TRUE(is_connected_subset(g, std::vector<VertexId>{}));
  EXPECT_TRUE(is_connected_subset(g, std::vector<VertexId>{3}));
}

TEST(Diameter, ExactValues) {
  EXPECT_EQ(diameter_exact(path_graph(10)), 9);
  EXPECT_EQ(diameter_exact(cycle_graph(10)), 5);
  EXPECT_EQ(diameter_exact(complete_graph(5)), 1);
}

TEST(Diameter, EccentricityThrowsOnDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW((void)eccentricity(b.build(), 0), std::invalid_argument);
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  // A star of paths (spider): double sweep is exact on trees.
  GraphBuilder b(10);
  // Legs from center 0: 1-2-3, 4-5, 6-7-8-9.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 4);
  b.add_edge(4, 5);
  b.add_edge(0, 6);
  b.add_edge(6, 7);
  b.add_edge(7, 8);
  b.add_edge(8, 9);
  Graph g = b.build();
  Rng rng(123);
  EXPECT_EQ(diameter_double_sweep(g, rng), diameter_exact(g));
}

TEST(Diameter, ApproximateCenterHasLowEccentricity) {
  Graph g = path_graph(101);
  Rng rng(7);
  VertexId c = approximate_center(g, rng);
  EXPECT_LE(eccentricity(g, c), 51);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  Graph g = cycle_graph(6);
  std::vector<VertexId> verts{0, 1, 2, 4};
  InducedSubgraph s = induced_subgraph(g, verts);
  EXPECT_EQ(s.graph.num_vertices(), 4);
  EXPECT_EQ(s.graph.num_edges(), 2);  // {0,1} and {1,2}
  // Mapping is a bijection onto the requested set.
  std::set<VertexId> back(s.to_parent.begin(), s.to_parent.end());
  EXPECT_EQ(back, std::set<VertexId>(verts.begin(), verts.end()));
  for (VertexId local = 0; local < 4; ++local)
    EXPECT_EQ(s.to_local[s.to_parent[local]], local);
  // Edge back-mapping points at real parent edges with matching endpoints.
  for (EdgeId le = 0; le < s.graph.num_edges(); ++le) {
    const Edge& lo = s.graph.edge(le);
    const Edge& pa = g.edge(s.edge_to_parent[le]);
    std::set<VertexId> mapped{s.to_parent[lo.u], s.to_parent[lo.v]};
    EXPECT_EQ(mapped, (std::set<VertexId>{pa.u, pa.v}));
  }
}

TEST(InducedSubgraph, DeduplicatesInput) {
  Graph g = path_graph(4);
  std::vector<VertexId> verts{2, 1, 2, 1};
  InducedSubgraph s = induced_subgraph(g, verts);
  EXPECT_EQ(s.graph.num_vertices(), 2);
  EXPECT_EQ(s.graph.num_edges(), 1);
}

TEST(DegreeStats, Computes) {
  Graph g = path_graph(4);
  DegreeStats d = degree_stats(g);
  EXPECT_EQ(d.total, 6u);
  EXPECT_EQ(d.max, 2);
  EXPECT_DOUBLE_EQ(d.average, 1.5);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 4);
  EXPECT_EQ(uf.set_size(1), 2);
}

TEST(UnionFind, DenseLabelsPartitionCorrectly) {
  UnionFind uf(6);
  uf.unite(0, 3);
  uf.unite(3, 5);
  uf.unite(1, 2);
  std::vector<VertexId> labels = uf.dense_labels();
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[0], labels[5]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[4], labels[0]);
  VertexId max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label + 1, uf.num_sets());
}

TEST(UnionFind, RejectsNegativeSize) {
  EXPECT_THROW(UnionFind(-2), std::invalid_argument);
}

// Property sweep: on random connected graphs, BFS distance satisfies the
// triangle property along edges and components agree with DSU over edges.
class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, BfsAndComponentsAgreeWithUnionFind) {
  Rng rng(GetParam());
  const VertexId n = 60;
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  GraphBuilder b(n);
  for (int i = 0; i < 90; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    if (u != v) b.add_edge(u, v);
  }
  Graph g = b.build();

  Components c = connected_components(g);
  UnionFind uf(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    uf.unite(g.edge(e).u, g.edge(e).v);
  EXPECT_EQ(c.count, uf.num_sets());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(c.label[g.edge(e).u], c.label[g.edge(e).v]);

  BfsResult r = bfs(g, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (r.reached(ed.u) && r.reached(ed.v)) {
      EXPECT_LE(std::abs(r.dist[ed.u] - r.dist[ed.v]), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99));

}  // namespace
}  // namespace mns
