// Tests for rotation-system embeddings: face tracing and Euler genus on
// hand-constructed planar and toroidal embeddings.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/embedding.hpp"

namespace mns {
namespace {

// Triangle embedded in the plane: 2 faces (inside + outer), genus 0.
EmbeddedGraph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);  // edge 0
  b.add_edge(0, 2);  // edge 1
  b.add_edge(1, 2);  // edge 2
  Graph g = b.build();
  std::vector<std::vector<EdgeId>> rot{
      {0, 1},  // around 0: to 1, to 2 (counterclockwise)
      {2, 0},  // around 1: to 2, to 0
      {1, 2},  // around 2: to 0, to 1
  };
  return EmbeddedGraph(std::move(g), std::move(rot));
}

TEST(Embedding, TriangleIsPlanar) {
  EmbeddedGraph e = triangle();
  EXPECT_EQ(e.num_faces(), 2);
  EXPECT_EQ(e.genus(), 0);
  for (int f = 0; f < e.num_faces(); ++f) {
    EXPECT_TRUE(e.face_is_simple_cycle(f));
    EXPECT_EQ(e.faces()[f].size(), 3u);
  }
}

TEST(Embedding, HalfEdgeBasics) {
  EmbeddedGraph e = triangle();
  const Graph& g = e.graph();
  for (EdgeId ed = 0; ed < g.num_edges(); ++ed) {
    HalfEdgeId h = e.half_edge(ed, g.edge(ed).u);
    EXPECT_EQ(e.tail(h), g.edge(ed).u);
    EXPECT_EQ(e.head(h), g.edge(ed).v);
    EXPECT_EQ(e.twin(h), e.half_edge(ed, g.edge(ed).v));
    EXPECT_EQ(e.tail(e.twin(h)), g.edge(ed).v);
  }
}

TEST(Embedding, FaceVerticesMatchTails) {
  EmbeddedGraph e = triangle();
  for (int f = 0; f < e.num_faces(); ++f) {
    auto verts = e.face_vertices(f);
    ASSERT_EQ(verts.size(), e.faces()[f].size());
    for (std::size_t i = 0; i < verts.size(); ++i)
      EXPECT_EQ(verts[i], e.tail(e.faces()[f][i]));
  }
}

TEST(Embedding, RejectsBadRotation) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g = b.build();
  // Wrong length at vertex 1.
  std::vector<std::vector<EdgeId>> rot{{0}, {0}, {1}};
  EXPECT_THROW(EmbeddedGraph(g, rot), std::invalid_argument);
}

TEST(Embedding, RejectsWrongEdgesInRotation) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g = b.build();
  // Vertex 0 lists edge 1 which is not incident to it.
  std::vector<std::vector<EdgeId>> rot{{1}, {0, 1}, {1}};
  EXPECT_THROW(EmbeddedGraph(g, rot), std::invalid_argument);
}

// K4 embedded in the plane: f = 4, genus 0.
TEST(Embedding, K4Planar) {
  GraphBuilder b(4);
  b.add_edge(0, 1);  // 0
  b.add_edge(0, 2);  // 1
  b.add_edge(0, 3);  // 2
  b.add_edge(1, 2);  // 3
  b.add_edge(1, 3);  // 4
  b.add_edge(2, 3);  // 5
  Graph g = b.build();
  // Standard planar embedding: vertex 3 in the center of triangle 0-1-2.
  std::vector<std::vector<EdgeId>> rot{
      {0, 2, 1},  // around 0: 1, 3, 2
      {0, 3, 4},  // around 1: 0(to 0), then to 2, then to 3
      {1, 5, 3},  // around 2
      {2, 4, 5},  // around 3 (center)
  };
  EmbeddedGraph e(std::move(g), std::move(rot));
  EXPECT_EQ(e.num_faces(), 4);
  EXPECT_EQ(e.genus(), 0);
}

// K4 with a "bad" rotation that embeds it on the torus instead.
TEST(Embedding, K4NonPlanarRotationHasHigherGenus) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  Graph g = b.build();
  // Swap two edges in the rotation of vertex 3: genus becomes 1.
  std::vector<std::vector<EdgeId>> rot{
      {0, 2, 1},
      {0, 3, 4},
      {1, 5, 3},
      {4, 2, 5},
  };
  EmbeddedGraph e(std::move(g), std::move(rot));
  EXPECT_GT(e.genus(), 0);
}

// 3x3 torus grid (wrap-around both ways): n=9, m=18, f=9 -> genus 1.
TEST(Embedding, TorusGridHasGenusOne) {
  const int k = 3;
  GraphBuilder b(k * k);
  auto id = [&](int r, int c) {
    return static_cast<VertexId>(((r + k) % k) * k + (c + k) % k);
  };
  for (int r = 0; r < k; ++r)
    for (int c = 0; c < k; ++c) {
      b.add_edge(id(r, c), id(r, c + 1));
      b.add_edge(id(r, c), id(r + 1, c));
    }
  Graph g = b.build();
  ASSERT_EQ(g.num_edges(), 2 * k * k);
  // Rotation at each vertex: right, down, left, up — consistent orientation.
  std::vector<std::vector<EdgeId>> rot(static_cast<std::size_t>(k * k));
  for (int r = 0; r < k; ++r)
    for (int c = 0; c < k; ++c) {
      VertexId v = id(r, c);
      EdgeId right = g.find_edge(v, id(r, c + 1));
      EdgeId down = g.find_edge(v, id(r + 1, c));
      EdgeId left = g.find_edge(v, id(r, c - 1));
      EdgeId up = g.find_edge(v, id(r - 1, c));
      rot[v] = {right, down, left, up};
    }
  EmbeddedGraph e(std::move(g), std::move(rot));
  EXPECT_EQ(e.num_faces(), k * k);
  EXPECT_EQ(e.genus(), 1);
}

TEST(Embedding, GenusThrowsOnDisconnected) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Graph g = b.build();
  std::vector<std::vector<EdgeId>> rot{{0}, {0}, {1}, {1}};
  EmbeddedGraph e(std::move(g), std::move(rot));
  EXPECT_THROW((void)e.genus(), std::invalid_argument);
}

}  // namespace
}  // namespace mns
