// Tests for the generator suite: every family is checked against the
// structural invariants it promises (planarity/genus via Euler's formula,
// recorded tree decompositions via the validator, clique-sum records via
// Definition 8's properties, vortex depth bounds, apex metadata).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/almost_embeddable.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/lk_family.hpp"
#include "gen/lower_bound.hpp"
#include "gen/planar.hpp"
#include "gen/series_parallel.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

TEST(Basic, PathCycleStarWheelComplete) {
  EXPECT_EQ(gen::path(5).num_edges(), 4);
  EXPECT_EQ(gen::cycle(5).num_edges(), 5);
  EXPECT_EQ(gen::star(6).num_edges(), 6);
  Graph w = gen::wheel(7);
  EXPECT_EQ(w.num_edges(), 12);  // 6 spokes + 6 ring edges
  EXPECT_EQ(diameter_exact(w), 2);
  EXPECT_EQ(gen::complete(6).num_edges(), 15);
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
  EXPECT_THROW(gen::wheel(3), std::invalid_argument);
}

TEST(Basic, RandomTreeIsTree) {
  Rng rng(1);
  Graph t = gen::random_tree(50, rng);
  EXPECT_EQ(t.num_edges(), 49);
  EXPECT_TRUE(is_connected(t));
}

TEST(Basic, ErdosRenyiConnectivity) {
  Rng rng(2);
  Graph g = gen::erdos_renyi(60, 30, /*ensure_connected=*/true, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), 59);
}

TEST(Planar, GridEmbeddingIsPlanar) {
  EmbeddedGraph g = gen::grid(5, 7);
  EXPECT_EQ(g.graph().num_vertices(), 35);
  EXPECT_EQ(g.genus(), 0);
  EXPECT_EQ(g.num_faces(), 4 * 6 + 1);  // inner quads + outer face
  EXPECT_EQ(diameter_exact(g.graph()), 4 + 6);
}

TEST(Planar, TriangulatedGridIsPlanar) {
  EmbeddedGraph g = gen::triangulated_grid(5, 5);
  EXPECT_EQ(g.genus(), 0);
  // All inner faces are triangles: f = 2*(rows-1)*(cols-1) + 1.
  EXPECT_EQ(g.num_faces(), 2 * 4 * 4 + 1);
}

class MaximalPlanarSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaximalPlanarSweep, IsMaximalPlanarWithValidEmbedding) {
  Rng rng(GetParam());
  const VertexId n = 200;
  EmbeddedGraph g = gen::random_maximal_planar(n, rng);
  EXPECT_EQ(g.graph().num_edges(), 3 * n - 6);
  EXPECT_EQ(g.genus(), 0);
  EXPECT_EQ(g.num_faces(), 2 * n - 4);
  for (int f = 0; f < g.num_faces(); ++f)
    EXPECT_EQ(g.faces()[f].size(), 3u);
  EXPECT_TRUE(is_connected(g.graph()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalPlanarSweep,
                         ::testing::Values(1, 7, 19, 42));

TEST(Surfaces, TorusGridGenusOne) {
  EmbeddedGraph t = gen::torus_grid(6, 8);
  EXPECT_EQ(t.graph().num_vertices(), 48);
  EXPECT_EQ(t.graph().num_edges(), 96);
  EXPECT_EQ(t.genus(), 1);
  for (int f = 0; f < t.num_faces(); ++f)
    EXPECT_EQ(t.faces()[f].size(), 4u);
}

TEST(Surfaces, HandleRaisesGenus) {
  Rng rng(3);
  EmbeddedGraph base = gen::grid(10, 10);
  EmbeddedGraph h1 = gen::add_handles(base, 1, rng);
  EXPECT_EQ(h1.genus(), 1);
  EXPECT_EQ(h1.graph().num_edges(), base.graph().num_edges() + 4);
  EmbeddedGraph h2 = gen::add_handles(base, 2, rng);
  EXPECT_EQ(h2.genus(), 2);
}

TEST(Surfaces, SurfaceGridGenusSweep) {
  Rng rng(4);
  for (int genus = 0; genus <= 3; ++genus) {
    EmbeddedGraph g = gen::surface_grid(9, 9, genus, rng);
    EXPECT_EQ(g.genus(), genus) << "genus " << genus;
    EXPECT_TRUE(is_connected(g.graph()));
  }
}

TEST(Vortex, DepthBoundHolds) {
  Rng rng(5);
  EmbeddedGraph base = gen::grid(8, 8);
  // Use the outer face (a long simple cycle) as the vortex cycle.
  int outer = -1;
  for (int f = 0; f < base.num_faces(); ++f)
    if (base.faces()[f].size() > 4) outer = f;
  ASSERT_NE(outer, -1);
  auto cycle = base.face_vertices(outer);
  const int depth = 3, internals = 6;
  gen::VortexResult vr =
      gen::add_vortex(base.graph(), cycle, depth, internals, rng);
  EXPECT_EQ(vr.graph.num_vertices(),
            base.graph().num_vertices() + internals);
  ASSERT_EQ(vr.vortex.internal_nodes.size(),
            static_cast<std::size_t>(internals));
  // Each boundary vertex lies in at most `depth` arcs (Definition 4).
  std::vector<int> coverage(vr.graph.num_vertices(), 0);
  for (const auto& arc : vr.vortex.arcs)
    for (VertexId v : arc) ++coverage[v];
  for (VertexId v = 0; v < vr.graph.num_vertices(); ++v)
    EXPECT_LE(coverage[v], depth);
  // Internal nodes connect only within their arcs (plus internal-internal).
  std::set<VertexId> internal_set(vr.vortex.internal_nodes.begin(),
                                  vr.vortex.internal_nodes.end());
  for (std::size_t i = 0; i < vr.vortex.internal_nodes.size(); ++i) {
    VertexId node = vr.vortex.internal_nodes[i];
    std::set<VertexId> arc(vr.vortex.arcs[i].begin(), vr.vortex.arcs[i].end());
    for (VertexId nb : vr.graph.neighbors(node))
      EXPECT_TRUE(arc.count(nb) || internal_set.count(nb))
          << "internal node reaches outside its arc";
  }
}

TEST(Vortex, RejectsBadInput) {
  Rng rng(6);
  Graph g = gen::cycle(6);
  std::vector<VertexId> cyc{0, 1, 2, 3, 4, 5};
  EXPECT_THROW(gen::add_vortex(g, cyc, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(gen::add_vortex(g, cyc, 2, 0, rng), std::invalid_argument);
  std::vector<VertexId> dup{0, 1, 2, 1};
  EXPECT_THROW(gen::add_vortex(g, dup, 2, 2, rng), std::invalid_argument);
}

TEST(Apex, AttachesAndRecords) {
  Rng rng(7);
  Graph base = gen::grid(6, 6).graph();
  gen::ApexResult ar = gen::add_apices(base, 3, 0.4, rng);
  EXPECT_EQ(ar.graph.num_vertices(), base.num_vertices() + 3);
  EXPECT_EQ(ar.apices.size(), 3u);
  for (VertexId a : ar.apices) EXPECT_GE(ar.graph.degree(a), 1);
  EXPECT_TRUE(is_connected(ar.graph));
}

TEST(Apex, UniversalApexShrinksDiameter) {
  Graph base = gen::path(50);
  gen::ApexResult ar = gen::add_universal_apex(base);
  EXPECT_EQ(diameter_exact(ar.graph), 2);
  EXPECT_EQ(ar.graph.degree(ar.apices[0]), 50);
}

class KTreeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KTreeSweep, DecompositionValidAndWidthK) {
  auto [k, seed] = GetParam();
  Rng rng(seed);
  const VertexId n = 80;
  gen::KTreeResult kt = gen::random_ktree(n, k, rng);
  EXPECT_EQ(kt.decomposition.validate(kt.graph), "");
  EXPECT_EQ(kt.decomposition.width(), k);
  EXPECT_TRUE(is_connected(kt.graph));
  // k-trees have exactly k*n - k(k+1)/2 edges.
  EXPECT_EQ(kt.graph.num_edges(), k * n - k * (k + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Params, KTreeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(11, 29)));

TEST(KTree, PartialKTreeStaysValidAndConnected) {
  Rng rng(8);
  gen::KTreeResult kt = gen::random_partial_ktree(100, 3, 0.4, rng);
  EXPECT_EQ(kt.decomposition.validate(kt.graph), "");
  EXPECT_LE(kt.decomposition.width(), 3);
  EXPECT_TRUE(is_connected(kt.graph));
}

TEST(SeriesParallel, GrowsConnectedSimple) {
  Rng rng(9);
  Graph sp = gen::random_series_parallel(200, rng);
  EXPECT_TRUE(is_connected(sp));
  EXPECT_GE(sp.num_vertices(), 3);
}

TEST(CliqueSumComposer, TwoTriangleBagsShareEdge) {
  Rng rng(10);
  Graph tri = gen::complete(3);
  std::vector<gen::BagInput> bags;
  bags.push_back({tri, {{0, 1}}});
  bags.push_back({tri, {{0, 1}}});
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.0, rng);
  EXPECT_EQ(r.graph.num_vertices(), 4);
  EXPECT_EQ(r.graph.num_edges(), 5);
  EXPECT_EQ(r.decomposition.validate(r.graph), "");
  EXPECT_EQ(r.decomposition.max_clique_size(), 2);
}

TEST(CliqueSumComposer, RejectsNonClique) {
  Rng rng(11);
  Graph p = gen::path(3);  // 0-1-2; {0,2} is not an edge
  std::vector<gen::BagInput> bags;
  bags.push_back({p, {{0, 2}}});
  bags.push_back({p, {{0, 1}}});
  EXPECT_THROW(gen::compose_clique_sum(bags, 2, 0.0, rng),
               std::invalid_argument);
}

class CliqueSumSweep : public ::testing::TestWithParam<int> {};

TEST_P(CliqueSumSweep, RandomCompositionsSatisfyDefinition8) {
  Rng rng(GetParam());
  std::vector<gen::BagInput> bags;
  const int B = 12;
  for (int i = 0; i < B; ++i) {
    Graph g = (i % 3 == 0) ? gen::complete(4)
              : (i % 3 == 1)
                  ? gen::random_ktree(10, 2, rng).graph
                  : gen::triangulated_grid(3, 3).graph();
    bags.push_back({g, gen::default_glue_cliques(g, 2)});
  }
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.3, rng);
  EXPECT_EQ(r.decomposition.validate(r.graph), "") << "seed " << GetParam();
  EXPECT_TRUE(is_connected(r.graph));
  // Every local->global map is injective.
  for (const auto& map : r.local_to_global) {
    std::set<VertexId> uniq(map.begin(), map.end());
    EXPECT_EQ(uniq.size(), map.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueSumSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(AlmostEmbeddable, StructureRecorded) {
  Rng rng(12);
  gen::AlmostEmbeddableParams p;
  p.apices = 2;
  p.genus = 1;
  p.vortex_depth = 2;
  p.num_vortices = 2;
  p.rows = 6;
  p.cols = 6;
  p.internal_per_vortex = 3;
  gen::AlmostEmbeddable ae = gen::random_almost_embeddable(p, rng);
  EXPECT_EQ(ae.base.genus(), 1);
  EXPECT_EQ(ae.vortices.size(), 2u);
  EXPECT_EQ(ae.apices.size(), 2u);
  EXPECT_EQ(ae.graph.num_vertices(),
            ae.base.graph().num_vertices() + 2 * 3 + 2);
  EXPECT_TRUE(is_connected(ae.graph));
  // Base edges survive into the full graph.
  for (EdgeId e = 0; e < ae.base.graph().num_edges(); ++e)
    EXPECT_TRUE(ae.graph.has_edge(ae.base.graph().edge(e).u,
                                  ae.base.graph().edge(e).v));
}

TEST(AlmostEmbeddable, PlanarBaseNoExtras) {
  Rng rng(13);
  gen::AlmostEmbeddableParams p;  // all defaults: plain 8x8 grid
  gen::AlmostEmbeddable ae = gen::random_almost_embeddable(p, rng);
  EXPECT_EQ(ae.base.genus(), 0);
  EXPECT_TRUE(ae.vortices.empty());
  EXPECT_TRUE(ae.apices.empty());
  EXPECT_EQ(ae.graph.num_vertices(), 64);
}

class LkSweep : public ::testing::TestWithParam<int> {};

TEST_P(LkSweep, SamplesAreValidCliqueSumsWithGlobalMetadata) {
  Rng rng(GetParam());
  gen::AlmostEmbeddableParams p;
  p.apices = 1;
  p.genus = 1;
  p.vortex_depth = 2;
  p.num_vortices = 1;
  p.rows = 5;
  p.cols = 5;
  p.internal_per_vortex = 3;
  gen::LkSample s = gen::random_lk_graph(6, p, 2, 0.2, rng);
  EXPECT_EQ(s.decomposition.validate(s.graph), "") << "seed " << GetParam();
  EXPECT_TRUE(is_connected(s.graph));
  ASSERT_EQ(s.global_apices.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(s.global_apices[i].size(), 1u);
    ASSERT_EQ(s.global_vortices[i].size(), 1u);
    // Global vortex internals really are vertices of the global graph and
    // they appear in bag i.
    for (VertexId v : s.global_vortices[i][0].internal_nodes) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, s.graph.num_vertices());
      auto bag = s.decomposition.bag_vertices(i);
      EXPECT_TRUE(std::binary_search(bag.begin(), bag.end(), v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LkSweep, ::testing::Values(3, 14, 15, 92));

TEST(LowerBound, ShapeAndDiameter) {
  gen::LowerBoundGraph lb = gen::lower_bound_graph(8);
  EXPECT_TRUE(is_connected(lb.graph));
  // Diameter is logarithmic despite ~p^2 path vertices.
  EXPECT_LE(diameter_exact(lb.graph), 2 * 5 + 2);
  EXPECT_EQ(lb.path_vertex(3, 4), 3 * 8 + 4);
}

TEST(Weights, UniqueWeightsAreAPermutation) {
  Rng rng(14);
  Graph g = gen::grid(4, 4).graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  std::vector<Weight> sorted = w;
  std::sort(sorted.begin(), sorted.end());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(sorted[e], e + 1);
}

TEST(Weights, RangeRespected) {
  Rng rng(15);
  Graph g = gen::cycle(20);
  std::vector<Weight> w = gen::random_weights(g, 5, 9, rng);
  for (Weight x : w) {
    EXPECT_GE(x, 5);
    EXPECT_LE(x, 9);
  }
  EXPECT_THROW(gen::random_weights(g, 9, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mns
