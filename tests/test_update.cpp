// Incremental update contract (DESIGN.md §12).
//
// The load-bearing guarantees:
//
// 1. MINIMUM WORK — a weight-only batch moves NOTHING structural (same graph
//    object, every cache entry kept); a structural batch invalidates exactly
//    the entries whose partitions touch the edit and migrates the rest live,
//    so an untouched probe partition stays a HIT with zero construction
//    charge across edge removals, insertions, and vertex renumbering.
//
// 2. ANSWER PARITY — after any update, solves on the warm session produce
//    payloads identical to a fresh Session built over the post-update graph
//    and certificate: incremental maintenance changes cost, never answers.
//
// 3. TYPED FAILURE — batches the structures cannot absorb (bad ids, edges a
//    tree decomposition does not cover) throw UpdateError and leave the
//    session fully usable and unchanged.
//
// Snapshot v2 (the update-history section) round-trips here too: files
// without churn stay at v1, files with churn carry their UpdateHistory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "congest/session.hpp"
#include "core/partition.hpp"
#include "gen/clique_sum.hpp"
#include "gen/planar.hpp"
#include "graph/delta.hpp"
#include "io/snapshot.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {
namespace {

using congest::Aggregate;
using congest::AggValue;
using congest::ExactSssp;
using congest::Mst;
using congest::RunReport;
using congest::Session;
using congest::UpdateStats;

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

/// BFS-tree edges get the light weights 1..n-1 (in discovery order), every
/// other edge is heavier than any all-light path: the MST is the BFS tree,
/// and re-weighting a heavy edge to a LARGER value changes no comparison
/// Boruvka ever makes (the bench_churn hit-preservation trick, in miniature).
std::vector<Weight> tree_light_weights(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<Weight> w(static_cast<std::size_t>(g.num_edges()),
                        10 * static_cast<Weight>(n) * static_cast<Weight>(n));
  std::vector<VertexId> frontier{0};
  seen[0] = 1;
  Weight light = 1;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId v : frontier) {
      auto nbrs = g.neighbors(v);
      auto eids = g.incident_edges(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (seen[static_cast<std::size_t>(nbrs[i])]) continue;
        seen[static_cast<std::size_t>(nbrs[i])] = 1;
        w[static_cast<std::size_t>(eids[i])] = light++;
        next.push_back(nbrs[i]);
      }
    }
    frontier = std::move(next);
  }
  // Make the heavy tail distinct so the MST stays unique.
  Weight bump = 0;
  for (Weight& x : w)
    if (x >= 10 * static_cast<Weight>(n) * static_cast<Weight>(n)) x += bump++;
  return w;
}

std::vector<AggValue> ramp_values(VertexId n) {
  std::vector<AggValue> v(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = {(3 * i) % 17, i};
  return v;
}

std::vector<PartId> remap_parts(const std::vector<PartId>& part_of,
                                const UpdateStats& stats, VertexId new_n) {
  std::vector<PartId> out(static_cast<std::size_t>(new_n), kNoPart);
  for (std::size_t v = 0; v < part_of.size(); ++v)
    if (stats.vertex_map[v] != kInvalidVertex)
      out[static_cast<std::size_t>(stats.vertex_map[v])] = part_of[v];
  return out;
}

/// The rebuild oracle: a cold Session over the warm session's CURRENT graph
/// and certificate. Equal payloads = incremental maintenance is invisible.
Session oracle_of(const Session& warm) {
  return Session(warm.graph(), warm.certificate());
}

void expect_payload_parity(Session& warm, Session& oracle,
                           const std::vector<Weight>& w) {
  const RunReport wm = warm.solve(Mst{w});
  const RunReport om = oracle.solve(Mst{w});
  std::vector<EdgeId> we = wm.mst().edges, oe = om.mst().edges;
  std::sort(we.begin(), we.end());
  std::sort(oe.begin(), oe.end());
  EXPECT_EQ(we, oe);
  EXPECT_EQ(wm.mst().fragment_of, om.mst().fragment_of);
  const RunReport ws = warm.solve(ExactSssp{w, 0});
  const RunReport os = oracle.solve(ExactSssp{w, 0});
  EXPECT_EQ(ws.sssp().dist, os.sssp().dist);
}

// ------------------------------------------------------------ delta layer --

TEST(GraphDeltaTest, MapsAndTouchedSets) {
  Graph g = path_graph(4);
  UpdateBatch batch;
  batch.remove_edges.push_back(g.find_edge(1, 2));
  batch.add_vertices = 1;
  batch.insert_edges.push_back({1, 4, 7});  // 4 = the new vertex (extended id)
  batch.insert_edges.push_back({2, 4, 9});
  const GraphDelta d = apply_delta(g, batch);
  EXPECT_EQ(d.graph.num_vertices(), 5);
  EXPECT_EQ(d.graph.num_edges(), 4);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(d.vertex_map[v], v);
  EXPECT_EQ(d.edge_map[static_cast<std::size_t>(g.find_edge(1, 2))],
            kInvalidEdge);
  EXPECT_NE(d.graph.find_edge(1, 4), kInvalidEdge);
  EXPECT_NE(d.graph.find_edge(2, 4), kInvalidEdge);
  // Touched: endpoints of removed/inserted edges plus the new vertex.
  EXPECT_TRUE(d.touched[1]);
  EXPECT_TRUE(d.touched[2]);
  EXPECT_TRUE(d.touched[4]);
  EXPECT_FALSE(d.touched[0]);
  EXPECT_FALSE(d.touched[3]);
}

TEST(GraphDeltaTest, WeightCarry) {
  Graph g = path_graph(4);
  std::vector<Weight> w{10, 20, 30};
  UpdateBatch batch;
  batch.weight_changes.push_back({g.find_edge(0, 1), 11});
  batch.remove_edges.push_back(g.find_edge(2, 3));
  batch.insert_edges.push_back({0, 3, 99});
  const GraphDelta d = apply_delta(g, batch);
  const std::vector<Weight> nw = remap_weights(g, d.graph, d, batch, w);
  ASSERT_EQ(nw.size(), static_cast<std::size_t>(d.graph.num_edges()));
  EXPECT_EQ(nw[static_cast<std::size_t>(d.graph.find_edge(0, 1))], 11);
  EXPECT_EQ(nw[static_cast<std::size_t>(d.graph.find_edge(1, 2))], 20);
  EXPECT_EQ(nw[static_cast<std::size_t>(d.graph.find_edge(0, 3))], 99);
}

TEST(GraphDeltaTest, TypedErrors) {
  Graph g = path_graph(4);
  {
    UpdateBatch b;
    b.remove_edges.push_back(99);
    EXPECT_THROW((void)apply_delta(g, b), UpdateError);
  }
  {
    UpdateBatch b;  // already present
    b.insert_edges.push_back({0, 1, 5});
    EXPECT_THROW((void)apply_delta(g, b), UpdateError);
  }
  {
    UpdateBatch b;  // same edge twice in one batch
    b.insert_edges.push_back({0, 2, 5});
    b.insert_edges.push_back({2, 0, 6});
    EXPECT_THROW((void)apply_delta(g, b), UpdateError);
  }
  {
    UpdateBatch b;  // endpoint beyond the extended id space
    b.insert_edges.push_back({0, 7, 5});
    EXPECT_THROW((void)apply_delta(g, b), UpdateError);
  }
  {
    UpdateBatch b;
    b.remove_vertices.push_back(4);
    EXPECT_THROW((void)apply_delta(g, b), UpdateError);
  }
  {
    UpdateBatch b;
    b.weight_changes.push_back({99, 1});
    std::vector<Weight> w{1, 2, 3};
    EXPECT_THROW(apply_weight_changes(b, w), UpdateError);
  }
}

// -------------------------------------------------- weight-only fast path --

TEST(SessionUpdateTest, WeightOnlyKeepsEveryEntry) {
  Session s(gen::grid_graph(8, 8));
  std::vector<Weight> w = tree_light_weights(s.graph());
  (void)s.solve(Mst{w});
  const std::size_t warm_entries = s.cache_size();
  ASSERT_GT(warm_entries, 0u);
  const Graph* graph_before = &s.graph();

  // Push the heaviest edge even higher: no Boruvka comparison changes.
  EdgeId heaviest = 0;
  for (EdgeId e = 1; e < s.graph().num_edges(); ++e)
    if (w[static_cast<std::size_t>(e)] > w[static_cast<std::size_t>(heaviest)])
      heaviest = e;
  UpdateBatch batch;
  batch.weight_changes.push_back(
      {heaviest, w[static_cast<std::size_t>(heaviest)] + 1000});
  const UpdateStats stats = s.update(batch, &w);

  EXPECT_FALSE(stats.structural);
  EXPECT_EQ(stats.entries_kept, warm_entries);
  EXPECT_EQ(stats.entries_invalidated, 0u);
  EXPECT_EQ(&s.graph(), graph_before);  // nothing structural moved
  EXPECT_EQ(s.cache_size(), warm_entries);
  EXPECT_EQ(w[static_cast<std::size_t>(heaviest)],
            tree_light_weights(s.graph())[static_cast<std::size_t>(heaviest)] +
                1000);

  const RunReport again = s.solve(Mst{w});
  EXPECT_EQ(again.cache_misses, 0);
  EXPECT_EQ(again.charged_construction_rounds, 0);
  EXPECT_GT(again.cache_hits, 0);
  EXPECT_EQ(s.core_ptr()->history().updates_applied, 1u);
}

TEST(SessionUpdateTest, WeightChangesWithoutVectorThrow) {
  Session s(path_graph(4));
  UpdateBatch batch;
  batch.weight_changes.push_back({0, 5});
  EXPECT_THROW((void)s.update(batch), UpdateError);
  EXPECT_EQ(s.graph().num_edges(), 3);  // unchanged, still usable
  (void)s.solve(congest::Bfs{0});
}

// ------------------------------------------- structural: dirty-set limits --

TEST(SessionUpdateTest, InvalidationIsLocalized) {
  Session s(gen::grid_graph(8, 8));
  std::vector<Weight> w = tree_light_weights(s.graph());
  const VertexId n = s.graph().num_vertices();
  // Probe A: row 0. Probe B: row 7 — where the edit lands.
  const Partition probe_a = ring_sectors(n, 0, 8, 2);
  const Partition probe_b = ring_sectors(n, 56, 8, 2);
  (void)s.solve(Aggregate{probe_a, ramp_values(n)});
  (void)s.solve(Aggregate{probe_b, ramp_values(n)});
  ASSERT_EQ(s.cache_size(), 2u);

  UpdateBatch batch;
  batch.remove_edges.push_back(s.graph().find_edge(62, 63));
  const UpdateStats stats = s.update(batch, &w);
  EXPECT_TRUE(stats.structural);
  EXPECT_EQ(stats.entries_kept, 1u);         // probe A migrated live
  EXPECT_EQ(stats.entries_invalidated, 1u);  // probe B touched the edit
  ASSERT_EQ(w.size(), static_cast<std::size_t>(s.graph().num_edges()));

  const RunReport hit = s.solve(Aggregate{probe_a, ramp_values(n)});
  EXPECT_EQ(hit.cache_hits, 1);
  EXPECT_EQ(hit.cache_misses, 0);
  EXPECT_EQ(hit.charged_construction_rounds, 0);
  const RunReport miss = s.solve(Aggregate{probe_b, ramp_values(n)});
  EXPECT_EQ(miss.cache_misses, 1);

  Session oracle = oracle_of(s);
  expect_payload_parity(s, oracle, w);
}

TEST(SessionUpdateTest, TreeEdgeRemovalPatchesSubpaths) {
  Session s(gen::grid_graph(8, 8));
  std::vector<Weight> w = tree_light_weights(s.graph());
  const RootedTree& t = s.tree();  // force-build so update() must patch it
  VertexId v = s.graph().num_vertices() - 1;
  if (v == t.root()) --v;
  const EdgeId tree_edge = t.parent_edge(v);
  ASSERT_NE(tree_edge, kInvalidEdge);

  UpdateBatch batch;
  batch.remove_edges.push_back(tree_edge);
  const UpdateStats stats = s.update(batch, &w);
  EXPECT_GE(stats.subpaths_rebuilt, 1u);  // the severed subpath was re-hung

  Session oracle = oracle_of(s);
  expect_payload_parity(s, oracle, w);
}

TEST(SessionUpdateTest, InsertEdgeAndVertexParity) {
  Session s(gen::grid_graph(6, 6));
  std::vector<Weight> w = tree_light_weights(s.graph());
  const VertexId n = s.graph().num_vertices();
  const Partition probe = ring_sectors(n, 30, 6, 2);  // last row, far from 0/1
  std::vector<PartId> probe_parts(probe.part_of_all().begin(),
                                  probe.part_of_all().end());
  (void)s.solve(Aggregate{probe, ramp_values(n)});

  const Weight heavy = 10 * static_cast<Weight>(n) * static_cast<Weight>(n) +
                       static_cast<Weight>(s.graph().num_edges()) + 100;
  UpdateBatch batch;
  batch.add_vertices = 1;
  batch.insert_edges.push_back({0, n, heavy});
  batch.insert_edges.push_back({1, n, heavy + 1});
  const UpdateStats stats = s.update(batch, &w);
  EXPECT_TRUE(stats.structural);
  EXPECT_EQ(s.graph().num_vertices(), n + 1);
  EXPECT_EQ(stats.entries_kept, 1u);
  ASSERT_EQ(w.size(), static_cast<std::size_t>(s.graph().num_edges()));

  // The migrated probe still serves for free (ids unchanged on survivors).
  probe_parts = remap_parts(probe_parts, stats, s.graph().num_vertices());
  const RunReport hit =
      s.solve(Aggregate{Partition(probe_parts), ramp_values(n + 1)});
  EXPECT_EQ(hit.cache_hits, 1);
  EXPECT_EQ(hit.charged_construction_rounds, 0);

  Session oracle = oracle_of(s);
  expect_payload_parity(s, oracle, w);
}

TEST(SessionUpdateTest, RemoveVertexRenumbersSurvivors) {
  // Ancestor shortcuts stay within a few tree levels of their parts, so the
  // probe's entry genuinely loses no edge when the far corner disappears.
  // (A greedy shortcut's region can span the whole tree — then removing ANY
  // vertex loses edges the entry used, and invalidation is correct.)
  Session s(gen::grid_graph(6, 6), ancestor_certificate(3));
  std::vector<Weight> w = tree_light_weights(s.graph());
  const VertexId n = s.graph().num_vertices();
  const Partition probe = ring_sectors(n, 30, 6, 2);
  std::vector<PartId> probe_parts(probe.part_of_all().begin(),
                                  probe.part_of_all().end());
  (void)s.solve(Aggregate{probe, ramp_values(n)});

  UpdateBatch batch;
  batch.remove_vertices.push_back(0);  // every survivor's id shifts down
  const UpdateStats stats = s.update(batch, &w);
  EXPECT_EQ(s.graph().num_vertices(), n - 1);
  EXPECT_EQ(stats.vertex_map[0], kInvalidVertex);
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(stats.vertex_map[v], v - 1);
  EXPECT_EQ(stats.entries_kept, 1u);

  probe_parts = remap_parts(probe_parts, stats, s.graph().num_vertices());
  const RunReport hit =
      s.solve(Aggregate{Partition(probe_parts), ramp_values(n - 1)});
  EXPECT_EQ(hit.cache_hits, 1);
  EXPECT_EQ(hit.charged_construction_rounds, 0);

  Session oracle = oracle_of(s);
  expect_payload_parity(s, oracle, w);
}

// ----------------------------------------- certificate family maintenance --

TEST(SessionUpdateTest, TreewidthRejectsUncoveredInsert) {
  Graph g = path_graph(6);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId i = 0; i + 1 < 6; ++i) {
    bags.push_back({i, i + 1});
    parent.push_back(static_cast<BagId>(i) - 1);
  }
  Session s(g, treewidth_certificate(
                   TreeDecomposition(std::move(bags), std::move(parent))));
  (void)s.solve(congest::Bfs{0});
  const std::size_t entries = s.cache_size();
  const Graph* graph_before = &s.graph();

  UpdateBatch batch;
  batch.insert_edges.push_back({0, 5, 1});  // no bag covers {0, 5}
  EXPECT_THROW((void)s.update(batch), UpdateError);

  // Typed failure left the session untouched and fully usable.
  EXPECT_EQ(&s.graph(), graph_before);
  EXPECT_EQ(s.cache_size(), entries);
  (void)s.solve(congest::Bfs{0});
}

TEST(SessionUpdateTest, TreewidthCoveredChurnParity) {
  Graph g = path_graph(6);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId i = 0; i + 1 < 6; ++i) {
    bags.push_back({i, i + 1});
    parent.push_back(static_cast<BagId>(i) - 1);
  }
  Session s(g, treewidth_certificate(
                   TreeDecomposition(std::move(bags), std::move(parent))));
  std::vector<Weight> w{1, 2, 3, 4, 5};
  // Grow the path by one covered vertex: a new leaf hanging off vertex 5.
  UpdateBatch batch;
  batch.add_vertices = 1;
  batch.insert_edges.push_back({5, 6, 6});
  (void)s.update(batch, &w);
  EXPECT_EQ(s.graph().num_vertices(), 7);
  Session oracle = oracle_of(s);
  expect_payload_parity(s, oracle, w);
}

TEST(SessionUpdateTest, CliqueSumToggleParity) {
  // Two triangle bags glued at an edge (2-clique-sum).
  GraphBuilder tb(3);
  tb.add_edge(0, 1);
  tb.add_edge(1, 2);
  tb.add_edge(0, 2);
  Graph tri = tb.build();
  std::vector<gen::BagInput> bags(2);
  for (auto& b : bags) {
    b.graph = tri;
    b.glue_cliques = gen::default_glue_cliques(tri, 2);
  }
  Rng rng(7);
  gen::CliqueSumResult cs = gen::compose_clique_sum(bags, 2, 0.0, rng);
  Session s(cs.graph, cliquesum_certificate(cs.decomposition));
  std::vector<Weight> w(static_cast<std::size_t>(s.graph().num_edges()));
  for (EdgeId e = 0; e < s.graph().num_edges(); ++e)
    w[static_cast<std::size_t>(e)] = e + 1;

  // Toggle an in-bag edge that is NOT part of the identified glue clique
  // (whose edges must stay present for the decomposition to remain valid).
  const std::span<const EdgeId> bag0 = cs.decomposition.bag_edges(0);
  const auto bag1_verts = cs.decomposition.bag_vertices(1);
  auto in_bag1 = [&](VertexId v) {
    return std::find(bag1_verts.begin(), bag1_verts.end(), v) !=
           bag1_verts.end();
  };
  EdgeId pick = kInvalidEdge;
  for (const EdgeId e : bag0) {
    const Edge& ed = s.graph().edge(e);
    if (!(in_bag1(ed.u) && in_bag1(ed.v))) {
      pick = e;
      break;
    }
  }
  ASSERT_NE(pick, kInvalidEdge);
  const Edge toggled = s.graph().edge(pick);
  UpdateBatch remove;
  remove.remove_edges.push_back(pick);
  (void)s.update(remove, &w);
  {
    Session oracle = oracle_of(s);
    expect_payload_parity(s, oracle, w);
  }
  UpdateBatch insert;
  insert.insert_edges.push_back({toggled.u, toggled.v, 1000});
  (void)s.update(insert, &w);
  {
    Session oracle = oracle_of(s);
    expect_payload_parity(s, oracle, w);
  }
}

// ------------------------------------------------- snapshot v2 round trip --

TEST(SessionUpdateTest, SnapshotHistoryRoundTrip) {
  const std::string fresh_path = "test_update_fresh.snap";
  const std::string churned_path = "test_update_churned.snap";
  Session s(gen::grid_graph(4, 4));
  std::vector<Weight> w = tree_light_weights(s.graph());
  (void)s.solve(Mst{w});

  // No churn yet: the writer stays at v1 (old readers keep working).
  s.save(fresh_path, w);
  {
    const io::Snapshot snap = io::read_snapshot(fresh_path);
    EXPECT_EQ(snap.version, 1u);
    EXPECT_FALSE(snap.history.any());
  }

  UpdateBatch batch;
  batch.remove_edges.push_back(s.graph().find_edge(14, 15));
  const UpdateStats stats = s.update(batch, &w);
  s.save(churned_path, w);
  {
    const io::Snapshot snap = io::read_snapshot(churned_path);
    EXPECT_EQ(snap.version, 2u);  // churn forces the v2 history section
    EXPECT_EQ(snap.history.updates_applied, 1u);
    EXPECT_EQ(snap.history.entries_kept, stats.entries_kept);
    EXPECT_EQ(snap.history.entries_invalidated, stats.entries_invalidated);
    EXPECT_EQ(snap.history.subpaths_rebuilt, stats.subpaths_rebuilt);
  }

  // Restore carries the history forward; further churn accumulates on it.
  Session restored = Session::restore(churned_path);
  EXPECT_EQ(restored.core_ptr()->history().updates_applied, 1u);
  UpdateBatch more;
  more.weight_changes.push_back({0, w[0] + 5});
  (void)restored.update(more, &w);
  EXPECT_EQ(restored.core_ptr()->history().updates_applied, 2u);

  std::remove(fresh_path.c_str());
  std::remove(churned_path.c_str());
}

TEST(SessionUpdateTest, BadBatchLeavesSessionUsable) {
  Session s(gen::grid_graph(4, 4));
  std::vector<Weight> w = tree_light_weights(s.graph());
  (void)s.solve(Mst{w});
  const std::size_t entries = s.cache_size();

  UpdateBatch batch;
  batch.remove_edges.push_back(kInvalidEdge);
  EXPECT_THROW((void)s.update(batch, &w), UpdateError);

  EXPECT_EQ(s.cache_size(), entries);
  const RunReport again = s.solve(Mst{w});
  EXPECT_EQ(again.cache_misses, 0);
  EXPECT_EQ(again.charged_construction_rounds, 0);
}

}  // namespace
}  // namespace mns
