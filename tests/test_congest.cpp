// Tests for the CONGEST simulator and distributed algorithms: capacity
// enforcement, BFS round counts, part-wise aggregation correctness and its
// shortcut speedup (Theorem 1's mechanism), Boruvka MST == Kruskal,
// controlled-GHS == Kruskal, and min-cut approximation vs Stoer-Wagner.
// All workload traffic goes through congest::Session (the one solver API);
// the aggregation primitive and the simulator keep their direct tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "congest/aggregation.hpp"
#include "congest/session.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/basic.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::AggValue;
using congest::Message;
using congest::RunReport;
using congest::Session;
using congest::Simulator;

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

Session greedy_session(const Graph& g) {
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(12345);
  return Session(g, greedy_certificate(), std::move(cfg));
}

TEST(Simulator, EnforcesDirectedEdgeCapacity) {
  Graph g = gen::path(3);
  Simulator sim(g);
  EdgeId e = g.find_edge(0, 1);
  sim.send(0, e, Message{});
  EXPECT_THROW(sim.send(0, e, Message{}), std::invalid_argument);
  sim.send(1, e, Message{});  // opposite direction is fine
  sim.finish_round();
  sim.send(0, e, Message{});  // next round resets capacity
  sim.finish_round();
  EXPECT_EQ(sim.rounds(), 2);
  EXPECT_EQ(sim.messages_sent(), 3);
}

TEST(Simulator, RejectsSendFromNonEndpoint) {
  Graph g = gen::path(3);
  Simulator sim(g);
  EdgeId e = g.find_edge(0, 1);
  EXPECT_THROW(sim.send(2, e, Message{}), std::invalid_argument);
}

TEST(Simulator, SkipRoundsAccountsIdleTime) {
  Graph g = gen::path(2);
  Simulator sim(g);
  sim.skip_rounds(7);
  EXPECT_EQ(sim.rounds(), 7);
  EXPECT_THROW(sim.skip_rounds(-1), std::invalid_argument);
}

TEST(Simulator, DeliversToInboxNextRound) {
  Graph g = gen::path(2);
  Simulator sim(g);
  sim.send(0, 0, Message{7, 8, 9});
  EXPECT_TRUE(sim.inbox(1).empty());
  sim.finish_round();
  auto in = sim.inbox(1);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].from, 0);
  EXPECT_EQ(in[0].msg.tag, 7);
  EXPECT_EQ(in[0].msg.aux, 8);
  EXPECT_EQ(in[0].msg.value, 9);
}

TEST(DistributedBfs, RoundsTrackEccentricity) {
  Graph g = gen::grid(7, 9).graph();
  Session s = greedy_session(g);
  RunReport r = s.solve(congest::Bfs{0});
  BfsResult ref = bfs(g, 0);
  EXPECT_EQ(r.bfs().dist, ref.dist);
  EXPECT_LE(r.rounds, ref.max_distance() + 1);
  EXPECT_GE(r.rounds, ref.max_distance());
  congest::DistributedBfsResult raw{r.bfs().dist, r.bfs().parent,
                                    r.bfs().parent_edge, r.rounds};
  RootedTree t = congest::tree_from_distributed_bfs(raw, 0);
  EXPECT_EQ(t.height(), ref.max_distance());
}

TEST(Aggregation, SinglePartFloodsMin) {
  Graph g = gen::cycle(10);
  Partition p = Partition::from_parts(10, {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}});
  Shortcut sc;
  sc.edges_of_part.resize(1);
  congest::PartwiseAggregator agg(g, p, sc);
  Simulator sim(g);
  std::vector<AggValue> init(10);
  for (VertexId v = 0; v < 10; ++v) init[v] = AggValue{100 - v, v};
  auto res = agg.aggregate_min(sim, init);
  EXPECT_EQ(res.min_of_part[0].value, 91);
  EXPECT_EQ(res.min_of_part[0].aux, 9);
  // Flooding a cycle takes about half the cycle length.
  EXPECT_GE(res.rounds, 4);
  EXPECT_LE(res.rounds, 12);
}

TEST(Aggregation, MultiplePartsIndependentMins) {
  Graph g = gen::grid(6, 6).graph();
  Rng rng(3);
  Partition p = voronoi_partition(g, 5, rng);
  RootedTree t = bfs_tree(g, 0);
  Shortcut sc =
      ShortcutEngine::global().build(g, t, p, greedy_certificate()).shortcut;
  congest::PartwiseAggregator agg(g, p, sc);
  Simulator sim(g);
  std::vector<AggValue> init(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    init[v] = AggValue{v * 3 + 1, v};
  auto res = agg.aggregate_min(sim, init);
  for (PartId q = 0; q < p.num_parts(); ++q) {
    AggValue expect{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::int32_t>::max()};
    for (VertexId v : p.members(q)) expect = std::min(expect, init[v]);
    EXPECT_EQ(res.min_of_part[q], expect) << "part " << q;
  }
}

TEST(Aggregation, WheelShortcutBeatsNoShortcut) {
  // The paper's motivating wheel example: ring sectors have Theta(n)
  // isolated diameter, so no-shortcut aggregation needs Theta(n) rounds
  // while apex-aware shortcuts bring it down to O(1)-ish.
  const VertexId n = 402;
  Graph g = gen::wheel(n);
  Partition p = ring_sectors(n, 1, n - 1, 4);
  RootedTree t = bfs_tree(g, 0);

  Shortcut empty;
  empty.edges_of_part.resize(p.num_parts());
  congest::PartwiseAggregator slow(g, p, empty);
  Simulator sim1(g);
  std::vector<AggValue> init(n);
  for (VertexId v = 0; v < n; ++v) init[v] = AggValue{1000 + v, v};
  auto res1 = slow.aggregate_min(sim1, init);

  Shortcut sc =
      ShortcutEngine::global().build(g, t, p, apex_certificate({0})).shortcut;
  congest::PartwiseAggregator fast(g, p, sc);
  Simulator sim2(g);
  auto res2 = fast.aggregate_min(sim2, init);

  EXPECT_EQ(res1.min_of_part[0], res2.min_of_part[0]);
  EXPECT_GE(res1.rounds, (n - 1) / 4 / 2);  // ~ sector length / 2
  EXPECT_LE(res2.rounds, res1.rounds / 3);  // must be much faster
}

TEST(Aggregation, RejectsWrongSizes) {
  Graph g = gen::path(4);
  Partition p = Partition::from_parts(4, {{0, 1}});
  Shortcut sc;  // wrong: 0 parts
  EXPECT_THROW(congest::PartwiseAggregator(g, p, sc), InvariantViolation);
}

TEST(Kruskal, MatchesKnownMst) {
  Graph g = gen::cycle(4);
  // Weights: edge {0,1}=1, {0,3}=4, {1,2}=2, {2,3}=3 (build order sorted).
  std::vector<Weight> w(g.num_edges());
  w[g.find_edge(0, 1)] = 1;
  w[g.find_edge(1, 2)] = 2;
  w[g.find_edge(2, 3)] = 3;
  w[g.find_edge(0, 3)] = 4;
  std::vector<EdgeId> mst = congest::kruskal_mst(g, w);
  std::set<EdgeId> ms(mst.begin(), mst.end());
  EXPECT_EQ(ms.size(), 3u);
  EXPECT_FALSE(ms.count(g.find_edge(0, 3)));
}

class MstSweep : public ::testing::TestWithParam<int> {};

TEST_P(MstSweep, BoruvkaMatchesKruskalOnRandomPlanar) {
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(120, rng);
  const Graph& g = eg.graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s = greedy_session(g);
  RunReport res = s.solve(congest::Mst{w});
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref);
  EXPECT_GE(res.rounds, 1);
  EXPECT_LE(res.phases, 20);
  // Boruvka revisits each new partition (dissemination, then next phase):
  // the session cache must see hits even within one run.
  EXPECT_GT(res.cache_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mst, NoShortcutBaselineAlsoCorrect) {
  Rng rng(9);
  Graph g = gen::grid(8, 8).graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s = greedy_session(g);
  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  RunReport res = s.solve(congest::Mst{w}, flooding);
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref);
  // Nothing constructed, nothing charged, nothing cached.
  EXPECT_EQ(res.charged_construction_rounds, 0);
  EXPECT_EQ(res.cache_misses, 0);
}

TEST(Mst, WorksOnLkSample) {
  Rng rng(11);
  gen::AlmostEmbeddableParams bp;
  bp.rows = 5;
  bp.cols = 5;
  bp.apices = 1;
  gen::LkSample s = gen::random_lk_graph(4, bp, 2, 0.0, rng);
  std::vector<Weight> w = gen::unique_random_weights(s.graph, rng);
  // End-to-end Theorem 6 pipeline as the session certificate.
  CliqueSumCertificate cert{s.decomposition};
  cert.apex_aware = true;
  cert.bag_apices = s.global_apices;
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(7);
  Session session(s.graph, std::move(cert), std::move(cfg));
  RunReport res = session.solve(congest::Mst{w});
  std::vector<EdgeId> ref = congest::kruskal_mst(s.graph, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref);
}

TEST(Mst, StopAtFragmentSizeHaltsEarly) {
  Rng rng(21);
  Graph g = gen::grid(10, 10).graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s = greedy_session(g);
  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  RunReport res = s.solve(congest::Mst{w, /*stop_at_fragment_size=*/10},
                          flooding);
  // Not a full MST; every fragment has >= 10 vertices and the chosen edges
  // are a subset of the true MST.
  std::vector<PartId> frag = res.mst().fragment_of;
  std::vector<int> size(*std::max_element(frag.begin(), frag.end()) + 1, 0);
  for (PartId p : frag) ++size[p];
  for (int s : size) EXPECT_GE(s, 10);
  std::vector<EdgeId> full = congest::kruskal_mst(g, w);
  std::set<EdgeId> full_set(full.begin(), full.end());
  for (EdgeId e : res.mst().edges) EXPECT_TRUE(full_set.count(e));
  EXPECT_LT(res.mst().edges.size(), full.size());
}

TEST(ControlledGhs, MatchesKruskal) {
  Rng rng(13);
  Graph g = gen::grid(9, 9).graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  congest::SessionConfig cfg;
  cfg.tree = [](const Graph& gg) { return bfs_tree(gg, 0); };
  Session s(g, greedy_certificate(), std::move(cfg));
  RunReport res = s.solve(congest::GhsMst{w});
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref);
  EXPECT_GE(res.rounds, 1);
}

TEST(ControlledGhs, MatchesKruskalOnMaximalPlanar) {
  Rng rng(14);
  EmbeddedGraph eg = gen::random_maximal_planar(100, rng);
  const Graph& g = eg.graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  congest::SessionConfig cfg;
  cfg.tree = [](const Graph& gg) { return bfs_tree(gg, 0); };
  Session s(g, greedy_certificate(), std::move(cfg));
  RunReport res = s.solve(congest::GhsMst{w});
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref);
}

TEST(MinCut, ExactOnSmallGraphs) {
  // Two triangles joined by one light edge: min cut = that edge.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  b.add_edge(2, 3);
  Graph g = b.build();
  std::vector<Weight> w(g.num_edges(), 10);
  w[g.find_edge(2, 3)] = 1;
  EXPECT_EQ(congest::exact_min_cut(g, w), 1);
}

TEST(MinCut, ExactOnCycleIsTwoLightest) {
  Graph g = gen::cycle(6);
  std::vector<Weight> w(g.num_edges(), 5);
  w[0] = 2;
  w[3] = 1;
  EXPECT_EQ(congest::exact_min_cut(g, w), 3);
}

TEST(MinCut, OneRespectingOnCycleIsExact) {
  Graph g = gen::cycle(8);
  Rng rng(15);
  std::vector<Weight> w = gen::random_weights(g, 1, 20, rng);
  // Any spanning tree of a cycle: the 1-respecting cuts include all pairs
  // {tree edge, the one non-tree edge}... compare against exact.
  std::vector<EdgeId> tree = congest::kruskal_mst(g, w);
  Weight one_resp = congest::best_one_respecting_cut(g, w, tree);
  EXPECT_GE(one_resp, congest::exact_min_cut(g, w));
}

class MinCutSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinCutSweep, PackingCutWithinFactorTwoOfExact) {
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(40, rng);
  const Graph& g = eg.graph();
  std::vector<Weight> w = gen::random_weights(g, 1, 30, rng);
  Weight exact = congest::exact_min_cut(g, w);

  Session s = greedy_session(g);
  congest::MinCut query{w};
  query.num_trees = 10;
  RunReport res = s.solve(query);
  // Cuts never beat the true minimum; the packing guarantees the factor.
  EXPECT_GE(res.min_cut().value, exact);
  EXPECT_LE(res.min_cut().value, 2 * exact + 1);
  EXPECT_GE(res.rounds, 1);
  // The packing re-solves MSTs on the same network: the singleton and
  // whole-network partitions must hit the cache after tree 1.
  EXPECT_GT(res.cache_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mns
