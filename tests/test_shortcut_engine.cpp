// ShortcutEngine tests: registry behavior, certificate dispatch, result
// validation, and — the migration safety net — parity tests asserting that
// every builder migrated behind the engine yields byte-identical shortcuts
// and metrics to its pre-refactor free function on fixed-seed instances.
// This file is the ONE deliberate caller of the core/engine.hpp free
// functions outside core/: they are the parity oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

void expect_same_shortcut(const Shortcut& a, const Shortcut& b,
                          const char* what) {
  ASSERT_EQ(a.edges_of_part.size(), b.edges_of_part.size()) << what;
  for (std::size_t i = 0; i < a.edges_of_part.size(); ++i) {
    auto ea = a.edges_of_part[i];
    auto eb = b.edges_of_part[i];
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    EXPECT_EQ(ea, eb) << what << " part " << i;
  }
}

void expect_same_metrics(const ShortcutMetrics& a, const ShortcutMetrics& b,
                         const char* what) {
  EXPECT_EQ(a.congestion, b.congestion) << what;
  EXPECT_EQ(a.block, b.block) << what;
  EXPECT_EQ(a.tree_diameter, b.tree_diameter) << what;
  EXPECT_EQ(a.quality, b.quality) << what;
  EXPECT_EQ(a.block_of_part, b.block_of_part) << what;
}

// ---------------------------------------------------------------- registry

TEST(ShortcutEngineRegistry, BuiltinsPresent) {
  const ShortcutEngine& e = ShortcutEngine::global();
  for (const char* name :
       {"uniform.greedy", "uniform.steiner", "uniform.ancestor", "treewidth",
        "apex", "cliquesum"})
    EXPECT_TRUE(e.has_builder(name)) << name;
  EXPECT_FALSE(e.has_builder("no-such-builder"));
  EXPECT_EQ(e.builder_names().size(), 6u);
}

TEST(ShortcutEngineRegistry, RejectsDuplicateEmptyAndNull) {
  ShortcutEngine e;
  auto noop = [](const Graph&, const RootedTree&, const Partition& p,
                 const StructuralCertificate&) {
    Shortcut sc;
    sc.edges_of_part.resize(p.num_parts());
    return sc;
  };
  EXPECT_THROW(e.register_builder("uniform.greedy", noop), InvariantViolation);
  EXPECT_THROW(e.register_builder("", noop), InvariantViolation);
  EXPECT_THROW(e.register_builder("null", nullptr), InvariantViolation);
  e.register_builder("custom.noop", noop);
  EXPECT_TRUE(e.has_builder("custom.noop"));
}

TEST(ShortcutEngineRegistry, CustomBuilderReachableViaBuildWith) {
  ShortcutEngine e;
  e.register_builder("custom.empty",
                     [](const Graph&, const RootedTree&, const Partition& p,
                        const StructuralCertificate&) {
                       Shortcut sc;
                       sc.edges_of_part.resize(p.num_parts());
                       return sc;
                     });
  Graph g = gen::cycle(8);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(8, {{1, 2}, {5, 6}});
  BuildResult r = e.build_with("custom.empty", g, t, p, greedy_certificate());
  EXPECT_EQ(r.builder, "custom.empty");
  EXPECT_EQ(r.metrics.congestion, 0);
  EXPECT_EQ(r.metrics.block, 2);  // no edges: every vertex its own block
}

TEST(ShortcutEngineRegistry, UnknownNameThrows) {
  Graph g = gen::cycle(6);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(6, {{0, 1}});
  EXPECT_THROW(ShortcutEngine::global().build_with("nope", g, t, p,
                                                   greedy_certificate()),
               InvariantViolation);
}

TEST(ShortcutEngineRegistry, CertificateKindMismatchThrows) {
  // Dispatching a uniform certificate into the treewidth builder must fail
  // loudly, not misbehave.
  Graph g = gen::cycle(6);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(6, {{0, 1}});
  EXPECT_THROW(ShortcutEngine::global().build_with("treewidth", g, t, p,
                                                   greedy_certificate()),
               InvariantViolation);
}

TEST(ShortcutEngineRegistry, InvalidBuilderOutputRejected) {
  // A builder that emits a non-tree edge must be caught by the engine's
  // validation, whatever the builder claims.
  ShortcutEngine e;
  e.register_builder("custom.broken",
                     [](const Graph& g, const RootedTree& t,
                        const Partition& p, const StructuralCertificate&) {
                       Shortcut sc;
                       sc.edges_of_part.resize(p.num_parts());
                       // Find a non-tree edge of the cycle and hand it out.
                       for (EdgeId e2 = 0; e2 < g.num_edges(); ++e2) {
                         bool is_tree = false;
                         for (VertexId v = 0; v < g.num_vertices(); ++v)
                           if (t.parent_edge(v) == e2) is_tree = true;
                         if (!is_tree) {
                           sc.edges_of_part[0].push_back(e2);
                           break;
                         }
                       }
                       return sc;
                     });
  Graph g = gen::cycle(8);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(8, {{1, 2}});
  EXPECT_THROW(e.build_with("custom.broken", g, t, p, greedy_certificate()),
               InvariantViolation);
}

// ---------------------------------------------------------------- dispatch

TEST(ShortcutEngineDispatch, NamesFollowCertificateKind) {
  EXPECT_EQ(builder_name_for(greedy_certificate()), "uniform.greedy");
  EXPECT_EQ(builder_name_for(steiner_certificate()), "uniform.steiner");
  EXPECT_EQ(builder_name_for(ancestor_certificate(3)), "uniform.ancestor");
  Rng rng(1);
  gen::KTreeResult kt = gen::random_ktree(30, 2, rng);
  EXPECT_EQ(builder_name_for(treewidth_certificate(kt.decomposition)),
            "treewidth");
  EXPECT_EQ(builder_name_for(apex_certificate({0})), "apex");
  CliqueSumDecomposition csd =
      clique_sum_from_tree_decomposition(kt.decomposition, kt.graph);
  EXPECT_EQ(builder_name_for(cliquesum_certificate(std::move(csd))),
            "cliquesum");
}

TEST(ShortcutEngineDispatch, BuildReportsDispatchedBuilder) {
  Rng rng(2);
  Graph g = gen::grid(8, 8).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 5, rng);
  BuildResult r =
      ShortcutEngine::global().build(g, t, p, steiner_certificate());
  EXPECT_EQ(r.builder, "uniform.steiner");
  EXPECT_EQ(r.metrics.block, 1);  // steiner: one block per part
}

// ------------------------------------------------------------------ parity
// Each migrated builder must yield identical shortcuts AND metrics to its
// pre-refactor free function on fixed-seed instances.

struct UniformFixture {
  Graph g;
  RootedTree t;
  Partition p;
  UniformFixture() : g(), t(make()), p(parts()) {}
  RootedTree make() {
    Rng rng(1);
    g = gen::random_maximal_planar(240, rng).graph();
    return bfs_tree(g, 0);
  }
  Partition parts() {
    Rng rng(7);
    return voronoi_partition(g, 8, rng);
  }
};

TEST(ShortcutEngineParity, UniformGreedy) {
  UniformFixture f;
  BuildResult r =
      ShortcutEngine::global().build(f.g, f.t, f.p, greedy_certificate());
  Shortcut ref = build_greedy_shortcut(f.g, f.t, f.p);
  expect_same_shortcut(r.shortcut, ref, "greedy");
  expect_same_metrics(r.metrics, measure_shortcut(f.g, f.t, f.p, ref),
                      "greedy");
}

TEST(ShortcutEngineParity, UniformSteiner) {
  UniformFixture f;
  BuildResult r =
      ShortcutEngine::global().build(f.g, f.t, f.p, steiner_certificate());
  Shortcut ref = build_steiner_shortcut(f.g, f.t, f.p);
  expect_same_shortcut(r.shortcut, ref, "steiner");
  expect_same_metrics(r.metrics, measure_shortcut(f.g, f.t, f.p, ref),
                      "steiner");
}

TEST(ShortcutEngineParity, UniformAncestor) {
  UniformFixture f;
  for (int levels : {0, 3, -1}) {
    BuildResult r = ShortcutEngine::global().build(
        f.g, f.t, f.p, ancestor_certificate(levels));
    Shortcut ref = build_ancestor_shortcut(f.g, f.t, f.p, levels);
    expect_same_shortcut(r.shortcut, ref, "ancestor");
    expect_same_metrics(r.metrics, measure_shortcut(f.g, f.t, f.p, ref),
                        "ancestor");
  }
}

TEST(ShortcutEngineParity, Treewidth) {
  Rng rng(3);
  gen::KTreeResult kt = gen::random_ktree(300, 3, rng);
  RootedTree t = bfs_tree(kt.graph, 0);
  Partition p = voronoi_partition(kt.graph, 12, rng);
  BuildResult r = ShortcutEngine::global().build(
      kt.graph, t, p, treewidth_certificate(kt.decomposition));
  Shortcut ref = build_treewidth_shortcut(kt.graph, t, p, kt.decomposition);
  expect_same_shortcut(r.shortcut, ref, "treewidth");
  expect_same_metrics(r.metrics, measure_shortcut(kt.graph, t, p, ref),
                      "treewidth");
}

TEST(ShortcutEngineParity, Apex) {
  const VertexId n = 202;
  Graph g = gen::wheel(n);
  RootedTree t = bfs_tree(g, 0);
  Partition p = ring_sectors(n, 1, n - 1, 6);
  for (OracleKind inner :
       {OracleKind::kGreedy, OracleKind::kSteiner, OracleKind::kTrivial}) {
    BuildResult r = ShortcutEngine::global().build(
        g, t, p, apex_certificate({0}, inner));
    Shortcut ref = build_apex_shortcut(g, t, p, {0}, make_oracle(inner));
    expect_same_shortcut(r.shortcut, ref, oracle_kind_name(inner));
    expect_same_metrics(r.metrics, measure_shortcut(g, t, p, ref),
                        oracle_kind_name(inner));
  }
}

TEST(ShortcutEngineParity, CliqueSum) {
  Rng rng(9);
  std::vector<gen::BagInput> bags;
  for (int i = 0; i < 8; ++i) {
    Graph bg = gen::triangulated_grid(4, 4).graph();
    bags.push_back({bg, gen::default_glue_cliques(bg, 2)});
  }
  gen::CliqueSumResult cs = gen::compose_clique_sum(bags, 2, 0.2, rng);
  RootedTree t = bfs_tree(cs.graph, 0);
  Partition p = voronoi_partition(cs.graph, 9, rng);
  for (bool fold : {true, false}) {
    CliqueSumCertificate cert{cs.decomposition};
    cert.fold = fold;
    BuildResult r = ShortcutEngine::global().build(cs.graph, t, p, cert);
    CliqueSumShortcutOptions o;
    o.fold = fold;
    Shortcut ref = build_cliquesum_shortcut(cs.graph, t, p, cs.decomposition,
                                            std::move(o));
    expect_same_shortcut(r.shortcut, ref, fold ? "folded" : "unfolded");
    expect_same_metrics(r.metrics, measure_shortcut(cs.graph, t, p, ref),
                        fold ? "folded" : "unfolded");
  }
}

TEST(ShortcutEngineParity, CliqueSumApexAwarePipeline) {
  // The Theorem 6 pipeline: apex-aware local oracles + bag apices.
  Rng rng(7);
  gen::AlmostEmbeddableParams bp;
  bp.apices = 1;
  bp.genus = 1;
  bp.rows = 5;
  bp.cols = 5;
  gen::LkSample s = gen::random_lk_graph(4, bp, 2, 0.1, rng);
  RootedTree t = bfs_tree(s.graph, 0);
  Partition p = voronoi_partition(s.graph, 8, rng);
  CliqueSumCertificate cert{s.decomposition};
  cert.apex_aware = true;
  cert.bag_apices = s.global_apices;
  BuildResult r = ShortcutEngine::global().build(s.graph, t, p, cert);
  CliqueSumShortcutOptions o;
  o.bag_apices = s.global_apices;
  o.local_oracle = make_apex_oracle(make_greedy_oracle());
  Shortcut ref =
      build_cliquesum_shortcut(s.graph, t, p, s.decomposition, std::move(o));
  expect_same_shortcut(r.shortcut, ref, "pipeline");
  expect_same_metrics(r.metrics, measure_shortcut(s.graph, t, p, ref),
                      "pipeline");
}

// ---------------------------------------------------------------- provider

TEST(ShortcutEngineProvider, MatchesDirectBuildOnCenterTree) {
  Rng rng(11);
  Graph g = gen::grid(10, 10).graph();
  Partition p = voronoi_partition(g, 6, rng);
  ShortcutProvider prov =
      ShortcutEngine::global().provider(greedy_certificate());
  Shortcut via_provider = prov(g, p);
  RootedTree t = center_tree_factory()(g);
  Shortcut direct =
      ShortcutEngine::global().build(g, t, p, greedy_certificate()).shortcut;
  expect_same_shortcut(via_provider, direct, "provider");
}

TEST(ShortcutEngineProvider, RespectsCustomTreeFactory) {
  Graph g = gen::wheel(50);
  Partition p = ring_sectors(50, 1, 49, 4);
  // Root the tree at the hub: the provider must use it (hub tree = star, so
  // every shortcut edge is a spoke = parent edge of a ring vertex).
  ShortcutProvider prov = ShortcutEngine::global().provider(
      steiner_certificate(),
      [](const Graph& gg) { return RootedTree::from_bfs(bfs(gg, 0), 0); });
  Shortcut sc = prov(g, p);
  RootedTree hub_tree = RootedTree::from_bfs(bfs(g, 0), 0);
  EXPECT_EQ(validate_tree_restricted(g, hub_tree, sc), "");
}

}  // namespace
}  // namespace mns
