// Snapshot persistence contract (DESIGN.md §8).
//
// Two load-bearing guarantees:
//
// 1. RESTORE PARITY — for every certificate family × {mst, sssp.approx} ×
//    thread widths {1, 4}: a solve from a restored snapshot is bit-identical
//    (rounds, messages, charges, cache behavior, full payload) to the
//    in-process warm solve it mirrors, and pays ZERO construction charges —
//    the restored cache serves every partition the workload asks for.
//
// 2. CORRUPTION SAFETY — truncated files, flipped payload/checksum bytes,
//    wrong versions, and out-of-range certificate tags throw a typed
//    io::SnapshotError, never UB (CI runs this suite under ASan+UBSan).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/json.hpp"
#include "io/report_json.hpp"
#include "io/snapshot.hpp"

namespace mns {
namespace {

using congest::RunReport;
using congest::Session;

// ----------------------------------------------------------- round trips --

io::Snapshot tiny_snapshot() {
  io::Snapshot snap;
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 3);
  snap.graph = b.build();
  snap.weights = {5, -2, 7, 1000000000000LL};
  snap.certificate = ancestor_certificate(3);
  io::TreeSnapshot ts;
  ts.root = 0;
  ts.parent = {kInvalidVertex, 0, 1, 0};
  ts.parent_edge = {kInvalidEdge, 0, 1, 3};
  snap.tree = ts;
  io::CachedShortcut entry;
  entry.part_of = {0, 0, 1, kNoPart};
  entry.shortcut.edges_of_part = {{0}, {1, 2}};
  snap.shortcuts.push_back(entry);
  return snap;
}

TEST(SnapshotRoundTrip, PreservesEverySection) {
  io::Snapshot snap = tiny_snapshot();
  io::Snapshot back = io::decode_snapshot(io::encode_snapshot(snap));
  EXPECT_EQ(back.graph.num_vertices(), 4);
  EXPECT_EQ(back.graph.edges(), snap.graph.edges());
  EXPECT_EQ(back.weights, snap.weights);
  const auto* u = std::get_if<UniformCertificate>(&back.certificate);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->kind, UniformCertificate::Kind::kAncestor);
  EXPECT_EQ(u->levels, 3);
  ASSERT_TRUE(back.tree.has_value());
  EXPECT_EQ(back.tree->root, 0);
  EXPECT_EQ(back.tree->parent, snap.tree->parent);
  EXPECT_EQ(back.tree->parent_edge, snap.tree->parent_edge);
  ASSERT_EQ(back.shortcuts.size(), 1u);
  EXPECT_EQ(back.shortcuts[0].part_of, snap.shortcuts[0].part_of);
  EXPECT_EQ(back.shortcuts[0].shortcut.edges_of_part,
            snap.shortcuts[0].shortcut.edges_of_part);
  // Canonical format: re-encoding the decoded snapshot is byte-identical.
  EXPECT_EQ(io::encode_snapshot(back), io::encode_snapshot(snap));
}

TEST(SnapshotRoundTrip, AllFourCertificateFamiliesSurvive) {
  Rng rng(7);
  std::vector<io::Snapshot> snaps;
  {  // uniform
    io::Snapshot s;
    s.graph = gen::grid(4, 4).graph();
    s.certificate = steiner_certificate();
    snaps.push_back(std::move(s));
  }
  {  // treewidth
    gen::KTreeResult kt = gen::random_ktree(30, 3, rng);
    io::Snapshot s;
    s.graph = kt.graph;
    s.certificate = treewidth_certificate(kt.decomposition);
    snaps.push_back(std::move(s));
  }
  {  // apex, non-default inner oracle
    gen::ApexResult ar = gen::add_apices(gen::grid(4, 4).graph(), 1, 0.3, rng);
    io::Snapshot s;
    s.graph = ar.graph;
    s.certificate = apex_certificate(ar.apices, OracleKind::kSteiner);
    snaps.push_back(std::move(s));
  }
  {  // clique-sum with the full Theorem 6 knobs exercised
    Graph bag = gen::triangulated_grid(3, 3).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 3; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    CliqueSumCertificate cert{cs.decomposition, /*fold=*/false,
                              OracleKind::kSteiner, /*apex_aware=*/true,
                              /*bag_apices=*/{{0}, {}, {1, 2}}};
    io::Snapshot s;
    s.graph = cs.graph;
    s.certificate = cert;
    snaps.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    SCOPED_TRACE(i);
    const std::vector<std::uint8_t> bytes = io::encode_snapshot(snaps[i]);
    io::Snapshot back = io::decode_snapshot(bytes);
    EXPECT_EQ(back.certificate.index(), snaps[i].certificate.index());
    EXPECT_EQ(builder_name_for(back.certificate),
              builder_name_for(snaps[i].certificate));
    // Deep equality via the canonical encoding.
    EXPECT_EQ(io::encode_snapshot(back), bytes);
  }
}

TEST(SnapshotRoundTrip, CrossSectionConsistencyIsValidated) {
  io::Snapshot snap = tiny_snapshot();
  snap.weights.pop_back();  // weights != edge count
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);

  snap = tiny_snapshot();
  snap.tree->parent.push_back(0);  // tree size != n
  snap.tree->parent_edge.push_back(kInvalidEdge);
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);

  snap = tiny_snapshot();
  snap.shortcuts[0].shortcut.edges_of_part[0] = {99};  // edge out of range
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);

  // Certificate ids are cross-checked too — a hostile apex/bag id must die
  // at decode, not as an OOB write inside a builder (the "never UB" half of
  // the format contract).
  snap = tiny_snapshot();
  snap.certificate = apex_certificate({1000});
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);

  // A part id at INT32_MAX must be rejected outright (n-bound), not fed
  // into the restore fingerprint where p + 1 would overflow.
  snap = tiny_snapshot();
  snap.shortcuts[0].part_of = {0, 0, INT32_MAX, kNoPart};
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);

  // Shortcut part count must match the partition's part count exactly.
  snap = tiny_snapshot();
  snap.shortcuts[0].shortcut.edges_of_part.push_back({});  // 3 parts vs 2
  EXPECT_THROW((void)io::decode_snapshot(io::encode_snapshot(snap)),
               io::SnapshotError);
}

// ------------------------------------------------------ corruption suite --

std::uint64_t read_u64_le(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i)
    x |= static_cast<std::uint64_t>(b[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return x;
}
void write_u32_le(std::vector<std::uint8_t>& b, std::size_t at,
                  std::uint32_t x) {
  for (int i = 0; i < 4; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((x >> (8 * i)) & 0xffu);
}
void write_u64_le(std::vector<std::uint8_t>& b, std::size_t at,
                  std::uint64_t x) {
  for (int i = 0; i < 8; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((x >> (8 * i)) & 0xffu);
}
std::uint64_t fnv_of(const std::vector<std::uint8_t>& b, std::size_t off,
                     std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= b[off + i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Walks the container frame: offset of each section's tag / payload /
/// checksum (mirrors the documented format, independently of the decoder).
struct SectionLoc {
  std::uint32_t tag = 0;
  std::size_t payload_off = 0;
  std::size_t payload_size = 0;
  std::size_t checksum_off = 0;
};
std::vector<SectionLoc> locate_sections(const std::vector<std::uint8_t>& b) {
  std::vector<SectionLoc> out;
  std::size_t pos = 16;  // magic(8) + version(4) + count(4)
  while (pos < b.size()) {
    SectionLoc loc;
    loc.tag = static_cast<std::uint32_t>(b[pos]) |
              (static_cast<std::uint32_t>(b[pos + 1]) << 8) |
              (static_cast<std::uint32_t>(b[pos + 2]) << 16) |
              (static_cast<std::uint32_t>(b[pos + 3]) << 24);
    loc.payload_size = static_cast<std::size_t>(read_u64_le(b, pos + 4));
    loc.payload_off = pos + 12;
    loc.checksum_off = loc.payload_off + loc.payload_size;
    out.push_back(loc);
    pos = loc.checksum_off + 8;
  }
  return out;
}

TEST(SnapshotCorruption, TruncationAlwaysThrowsTyped) {
  const std::vector<std::uint8_t> bytes =
      io::encode_snapshot(tiny_snapshot());
  // Every strict prefix must fail loudly — header cuts, mid-section cuts,
  // one-byte-short cuts alike.
  for (std::size_t cut :
       {std::size_t{0}, std::size_t{5}, std::size_t{8}, std::size_t{12},
        std::size_t{16}, bytes.size() / 3, bytes.size() / 2,
        bytes.size() - 9, bytes.size() - 1}) {
    SCOPED_TRACE(cut);
    std::vector<std::uint8_t> t(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)io::decode_snapshot(t), io::SnapshotError);
  }
}

TEST(SnapshotCorruption, BadMagicThrows) {
  std::vector<std::uint8_t> bytes = io::encode_snapshot(tiny_snapshot());
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)io::decode_snapshot(bytes), io::SnapshotError);
}

TEST(SnapshotCorruption, WrongVersionThrows) {
  std::vector<std::uint8_t> bytes = io::encode_snapshot(tiny_snapshot());
  write_u32_le(bytes, 8, 99);  // version field
  try {
    (void)io::decode_snapshot(bytes);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotCorruption, FlippedPayloadByteFailsChecksum) {
  std::vector<std::uint8_t> bytes = io::encode_snapshot(tiny_snapshot());
  const std::vector<SectionLoc> sections = locate_sections(bytes);
  ASSERT_FALSE(sections.empty());
  for (const SectionLoc& s : sections) {
    SCOPED_TRACE(s.tag);
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[s.payload_off + s.payload_size / 2] ^= 0x40;
    try {
      (void)io::decode_snapshot(corrupt);
      FAIL() << "expected SnapshotError";
    } catch (const io::SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
  }
}

TEST(SnapshotCorruption, FlippedChecksumByteFailsChecksum) {
  std::vector<std::uint8_t> bytes = io::encode_snapshot(tiny_snapshot());
  const std::vector<SectionLoc> sections = locate_sections(bytes);
  ASSERT_FALSE(sections.empty());
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[sections[0].checksum_off] ^= 0x01;
  EXPECT_THROW((void)io::decode_snapshot(corrupt), io::SnapshotError);
}

TEST(SnapshotCorruption, WrongFamilyCertificateTagThrowsTyped) {
  std::vector<std::uint8_t> bytes = io::encode_snapshot(tiny_snapshot());
  bool patched = false;
  for (const SectionLoc& s : locate_sections(bytes)) {
    if (s.tag != 3) continue;  // certificate section
    // Out-of-range family tag, with the checksum recomputed so the typed
    // tag validation (not the checksum) is what rejects it.
    write_u32_le(bytes, s.payload_off, 7);
    write_u64_le(bytes, s.checksum_off,
                 fnv_of(bytes, s.payload_off, s.payload_size));
    patched = true;
  }
  ASSERT_TRUE(patched);
  try {
    (void)io::decode_snapshot(bytes);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("certificate"), std::string::npos);
  }
}

TEST(SnapshotCorruption, MissingFileThrowsTyped) {
  EXPECT_THROW((void)io::read_snapshot("no/such/dir/snapshot.mns"),
               io::SnapshotError);
  EXPECT_THROW(io::write_snapshot(tiny_snapshot(), "no/such/dir/out.mns"),
               io::SnapshotError);
}

// -------------------------------------------------------- restore parity --

struct FamilyCase {
  std::string name;
  Graph graph;
  StructuralCertificate cert;
};

std::vector<FamilyCase> families() {
  std::vector<FamilyCase> out;
  Rng rng(23);
  out.push_back({"planar", gen::grid(9, 9).graph(), greedy_certificate()});
  {
    gen::KTreeResult kt = gen::random_ktree(90, 3, rng);
    out.push_back(
        {"treewidth", kt.graph, treewidth_certificate(kt.decomposition)});
  }
  {
    gen::ApexResult ar = gen::add_apices(gen::grid(7, 7).graph(), 1, 0.2, rng);
    out.push_back({"apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(4, 4).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 5; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back(
        {"cliquesum", cs.graph, cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// The acceptance matrix: {planar, treewidth, apex, cliquesum} ×
// {mst, sssp.approx} × threads {1, 4}. A solve from the restored snapshot
// must be bit-identical to the in-process warm solve AND pay zero
// construction charges.
TEST(SnapshotRestoreParity, WarmSolveBitIdenticalAcrossProcessBoundary) {
  for (FamilyCase& fam : families()) {
    Rng wrng(31);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
    congest::ApproxSssp sq{w, 0};
    sq.epsilon = 0.25;
    for (int threads : {1, 4}) {
      SCOPED_TRACE(fam.name + " threads=" + std::to_string(threads));
      congest::SolveOptions opt;
      opt.threads = threads;
      const std::string path = "snapshot_parity_" + fam.name + "_" +
                               std::to_string(threads) + ".mns";

      Session warm(fam.graph, fam.cert);
      // Prime: the first runs pay construction and fill the cache.
      (void)warm.solve(congest::Mst{w}, opt);
      (void)warm.solve(sq, opt);
      warm.save(path, w);

      // In-process warm solves — the oracle the restored ones must match.
      RunReport warm_mst = warm.solve(congest::Mst{w}, opt);
      RunReport warm_sssp = warm.solve(sq, opt);
      EXPECT_EQ(warm_mst.charged_construction_rounds, 0);
      EXPECT_EQ(warm_sssp.charged_construction_rounds, 0);

      Session restored = Session::restore(path);
      RunReport rest_mst = restored.solve(congest::Mst{w}, opt);
      RunReport rest_sssp = restored.solve(sq, opt);

      EXPECT_TRUE(io::run_reports_identical(warm_mst, rest_mst));
      EXPECT_TRUE(io::run_reports_identical(warm_sssp, rest_sssp));
      // The load-bearing guarantee: the restored cache serves EVERY
      // partition — zero misses, zero construction charges.
      EXPECT_EQ(rest_mst.charged_construction_rounds, 0);
      EXPECT_EQ(rest_mst.cache_misses, 0);
      EXPECT_GT(rest_mst.cache_hits, 0);
      EXPECT_EQ(rest_sssp.charged_construction_rounds, 0);
      EXPECT_EQ(rest_sssp.cache_misses, 0);
      // Canonical JSON agrees field-for-field except wall_ms.
      EXPECT_EQ(io::parse_json(io::run_report_to_json(warm_mst))
                    .find("payload")
                    ->render(),
                io::parse_json(io::run_report_to_json(rest_mst))
                    .find("payload")
                    ->render());
      std::remove(path.c_str());
    }
  }
}

// save -> restore -> save is byte-identical: the snapshot is a fixed point
// (tree and LRU order survive the round trip exactly).
TEST(SnapshotRestoreParity, SaveRestoreSaveIsByteIdentical) {
  FamilyCase fam = std::move(families()[0]);
  Rng wrng(47);
  std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
  Session s(fam.graph, fam.cert);
  (void)s.solve(congest::Mst{w});
  congest::ApproxSssp q{w, 0};
  (void)s.solve(q);
  s.save("snapshot_fixpoint_a.mns", w);
  Session restored = Session::restore("snapshot_fixpoint_a.mns");
  restored.save("snapshot_fixpoint_b.mns", w);
  EXPECT_EQ(file_bytes("snapshot_fixpoint_a.mns"),
            file_bytes("snapshot_fixpoint_b.mns"));
  std::remove("snapshot_fixpoint_a.mns");
  std::remove("snapshot_fixpoint_b.mns");
}

// A snapshot saved BEFORE any solve restores to a cold-but-working session
// (tree present, cache empty) — gen-style snapshots.
TEST(SnapshotRestoreParity, ColdSnapshotRestoresAndSolves) {
  FamilyCase fam = std::move(families()[2]);  // apex
  Rng wrng(53);
  std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
  Session cold(fam.graph, fam.cert);
  cold.save("snapshot_cold.mns", w);
  io::Snapshot snap = io::read_snapshot("snapshot_cold.mns");
  EXPECT_TRUE(snap.tree.has_value());  // save() force-builds the tree
  EXPECT_TRUE(snap.shortcuts.empty());
  EXPECT_EQ(snap.weights, w);
  Session restored = Session::restore(std::move(snap));
  RunReport direct = cold.solve(congest::Mst{w});
  RunReport from_snap = restored.solve(congest::Mst{w});
  EXPECT_TRUE(io::run_reports_identical(direct, from_snap));
  std::remove("snapshot_cold.mns");
}

// ---------------------------------------------------------- json contract --

TEST(CanonicalReportJson, ParsesAndCarriesDeterministicFields) {
  Graph g = gen::grid(5, 5).graph();
  Rng rng(11);
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  Session s(g);
  RunReport rep = s.solve(congest::Mst{w});
  const std::string json = io::run_report_to_json(rep);
  io::JsonValue v = io::parse_json(json);
  ASSERT_EQ(v.kind, io::JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("workload")->text, "mst");
  EXPECT_EQ(static_cast<long long>(v.find("rounds")->number), rep.rounds);
  EXPECT_EQ(static_cast<long long>(v.find("messages")->number), rep.messages);
  const io::JsonValue* payload = v.find("payload");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->find("kind")->text, "mst");
  // Identical WARM runs are identical in every deterministic field (the
  // first run differs from them exactly in its construction charge and
  // cache-miss accounting).
  RunReport warm1 = s.solve(congest::Mst{w});
  RunReport warm2 = s.solve(congest::Mst{w});
  EXPECT_FALSE(io::run_reports_identical(rep, warm1));  // cold vs warm
  EXPECT_TRUE(io::run_reports_identical(warm1, warm2));
  EXPECT_EQ(warm1.rounds, rep.rounds);  // measured schedule never changes
}

TEST(CanonicalReportJson, MalformedJsonThrowsTyped) {
  EXPECT_THROW((void)io::parse_json("{\"a\": }"), io::JsonError);
  EXPECT_THROW((void)io::parse_json("{\"a\": 1} trailing"), io::JsonError);
  EXPECT_THROW((void)io::parse_json("\"unterminated"), io::JsonError);
  EXPECT_THROW((void)io::parse_json("{\"a\": 1e}"), io::JsonError);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW((void)io::parse_json(deep), io::JsonError);
  // Happy path: all scalar kinds.
  io::JsonValue v =
      io::parse_json("{\"b\": true, \"n\": null, \"x\": -1.5e2, \"s\": \"t\"}");
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("n")->kind, io::JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("x")->number, -150.0);
  EXPECT_EQ(v.find("x")->text, "-1.5e2");  // raw lexeme preserved
  EXPECT_EQ(v.find("s")->text, "t");
}

}  // namespace
}  // namespace mns
