// Golden fixed-seed tests for the distributed SSSP subsystem: the exact
// lock-step Bellman-Ford must equal the sequential Dijkstra oracle on every
// generator family, the (1+eps) shortcut-accelerated SSSP must stay within
// its guarantee (and never below the true distance — every estimate is a
// real path), and the weight-rounding ladder must respect its per-edge
// (1+eps) bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "congest/session.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::RunReport;
using congest::Session;

Session greedy_session(const Graph& g) {
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(99);
  return Session(g, greedy_certificate(), std::move(cfg));
}

void expect_exact_matches_oracle(const Graph& g, const std::vector<Weight>& w,
                                 VertexId source) {
  Session s = greedy_session(g);
  RunReport res = s.solve(congest::ExactSssp{w, source});
  ShortestPathResult ref = dijkstra(g, w, source);
  ASSERT_EQ(res.sssp().dist.size(), ref.dist.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.sssp().dist[v], ref.dist[v]) << "vertex " << v;
  EXPECT_GE(res.rounds, 1);
  EXPECT_LE(res.rounds, g.num_vertices());
}

void expect_approx_within(const Graph& g, const congest::ApproxSssp& query,
                          StructuralCertificate cert) {
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(99);
  Session s(g, std::move(cert), std::move(cfg));
  RunReport res = s.solve(query);
  ShortestPathResult ref = dijkstra(g, query.weights, query.source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (ref.dist[v] == kUnreachedWeight) {
      EXPECT_EQ(res.sssp().dist[v], kUnreachedWeight) << "vertex " << v;
      continue;
    }
    // Estimates are lengths of real paths: never below the true distance.
    EXPECT_GE(res.sssp().dist[v], ref.dist[v]) << "vertex " << v;
    EXPECT_LE(static_cast<double>(res.sssp().dist[v]),
              (1.0 + query.epsilon) * static_cast<double>(ref.dist[v]) + 1e-9)
        << "vertex " << v;
  }
  EXPECT_GE(res.phases, 1);
  EXPECT_GE(res.aggregations, 1);
}

TEST(RoundWeights, LadderRespectsPerEdgeBound) {
  std::vector<Weight> w{1, 2, 3, 7, 10, 99, 1000, 123456, 1, 5};
  for (double eps : {0.05, 0.25, 1.0}) {
    std::vector<Weight> r = congest::round_weights(w, eps);
    ASSERT_EQ(r.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_GE(r[i], w[i]);
      EXPECT_LE(static_cast<double>(r[i]),
                (1.0 + eps) * static_cast<double>(w[i]));
    }
  }
  EXPECT_THROW(congest::round_weights({0}, 0.5), InvariantViolation);
  EXPECT_THROW(congest::round_weights({1}, 0.0), InvariantViolation);
}

TEST(ExactSssp, MatchesDijkstraOnGrid) {
  Rng rng(7);
  Graph g = gen::grid(9, 11).graph();
  expect_exact_matches_oracle(g, gen::unique_random_weights(g, rng), 0);
}

TEST(ExactSssp, MatchesDijkstraOnRandomPlanar) {
  for (unsigned seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Graph g = gen::random_maximal_planar(150, rng).graph();
    expect_exact_matches_oracle(g, gen::unique_random_weights(g, rng),
                                static_cast<VertexId>(seed));
  }
}

TEST(ExactSssp, MatchesDijkstraOnKTree) {
  Rng rng(17);
  gen::KTreeResult kt = gen::random_ktree(200, 3, rng);
  expect_exact_matches_oracle(kt.graph,
                              gen::unique_random_weights(kt.graph, rng), 5);
}

TEST(ExactSssp, MatchesDijkstraOnApexGrid) {
  Rng rng(23);
  gen::ApexResult ar = gen::add_apices(gen::grid(8, 8).graph(), 2, 0.2, rng);
  expect_exact_matches_oracle(ar.graph,
                              gen::unique_random_weights(ar.graph, rng), 0);
}

TEST(ExactSssp, MatchesDijkstraOnCliqueSum) {
  Rng rng(31);
  Graph bag = gen::triangulated_grid(4, 4).graph();
  std::vector<gen::BagInput> inputs;
  for (int i = 0; i < 8; ++i)
    inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
  gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
  expect_exact_matches_oracle(cs.graph,
                              gen::unique_random_weights(cs.graph, rng), 1);
}

TEST(ExactSssp, LeavesOtherComponentsUnreached) {
  // Two disjoint triangles; only the source's component is reached.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  Graph g = b.build();
  std::vector<Weight> w(g.num_edges(), 2);
  Session s = greedy_session(g);
  RunReport res = s.solve(congest::ExactSssp{w, 0});
  EXPECT_EQ(res.sssp().dist[0], 0);
  EXPECT_EQ(res.sssp().dist[1], 2);
  EXPECT_EQ(res.sssp().dist[2], 2);
  for (VertexId v = 3; v < 6; ++v)
    EXPECT_EQ(res.sssp().dist[v], kUnreachedWeight);
}

TEST(ExactSssp, RoundsTrackShortestPathHops) {
  // A weighted path: dist cascades one hop per round.
  Graph g = gen::path(40);
  std::vector<Weight> w(g.num_edges());
  Rng rng(3);
  w = gen::random_weights(g, 1, 9, rng);
  Session s = greedy_session(g);
  RunReport res = s.solve(congest::ExactSssp{w, 0});
  EXPECT_GE(res.rounds, 39);
  EXPECT_LE(res.rounds, 40);
}

TEST(ApproxSssp, WithinEpsOnGridGreedyCertificate) {
  Rng rng(41);
  Graph g = gen::grid(12, 12).graph();
  congest::ApproxSssp query{gen::unique_random_weights(g, rng), 0};
  query.epsilon = 0.25;
  expect_approx_within(g, query, greedy_certificate());
}

TEST(ApproxSssp, WithinEpsOnKTreeTreewidthCertificate) {
  Rng rng(43);
  gen::KTreeResult kt = gen::random_ktree(250, 3, rng);
  congest::ApproxSssp query{gen::unique_random_weights(kt.graph, rng), 3};
  query.epsilon = 0.5;
  expect_approx_within(kt.graph, query,
                       treewidth_certificate(kt.decomposition));
}

TEST(ApproxSssp, WithinEpsOnApexCertificate) {
  Rng rng(47);
  gen::ApexResult ar = gen::add_apices(gen::grid(10, 10).graph(), 1, 0.15, rng);
  congest::ApproxSssp query{gen::unique_random_weights(ar.graph, rng), 0};
  query.epsilon = 0.1;
  expect_approx_within(ar.graph, query, apex_certificate(ar.apices));
}

TEST(ApproxSssp, WithinEpsOnCliqueSumCertificate) {
  Rng rng(53);
  Graph bag = gen::triangulated_grid(4, 4).graph();
  std::vector<gen::BagInput> inputs;
  for (int i = 0; i < 10; ++i)
    inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
  gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
  congest::ApproxSssp query{gen::unique_random_weights(cs.graph, rng), 0};
  query.epsilon = 0.25;
  expect_approx_within(cs.graph, query,
                       cliquesum_certificate(cs.decomposition));
}

TEST(ApproxSssp, DeterministicSeedsStayWithinEps) {
  // The source-independent (cache-friendly) seeding must preserve the
  // guarantee: estimates are still real path lengths run to quiescence.
  Rng rng(59);
  Graph g = gen::grid(12, 12).graph();
  congest::ApproxSssp query{gen::unique_random_weights(g, rng), 7};
  query.epsilon = 0.25;
  query.wavefront_seeds = false;
  expect_approx_within(g, query, greedy_certificate());
}

TEST(ApproxSssp, ExactWhenWeightsAlreadyOnLadder) {
  // Unit weights are fixed points of every ladder: the approximation then
  // equals the exact (hop-count) distances at any epsilon.
  Graph g = gen::cycle(30);
  std::vector<Weight> w(g.num_edges(), 1);
  Session s = greedy_session(g);
  congest::ApproxSssp query{w, 0};
  query.epsilon = 3.0;
  RunReport res = s.solve(query);
  ShortestPathResult ref = dijkstra(g, w, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.sssp().dist[v], ref.dist[v]) << "vertex " << v;
}

TEST(ApproxSssp, RejectsDisconnectedGraphs) {
  // The shortcut machinery's spanning tree assumes one connected network
  // (same contract as Bfs); ExactSssp covers the disconnected case.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  Graph g = b.build();
  std::vector<Weight> w(g.num_edges(), 3);
  Session s = greedy_session(g);
  EXPECT_THROW((void)s.solve(congest::ApproxSssp{w, 0}), InvariantViolation);
}

TEST(ApproxSssp, RequiresPositiveWeights) {
  Graph g = gen::path(4);
  Session s = greedy_session(g);
  std::vector<Weight> zero(g.num_edges(), 0);
  EXPECT_THROW((void)s.solve(congest::ApproxSssp{zero, 0}),
               InvariantViolation);
}

TEST(Dijkstra, HopCapBoundsCellGrowth) {
  Graph g = gen::path(20);
  std::vector<Weight> w(g.num_edges(), 5);
  std::vector<VertexId> sources{0};
  ShortestPathResult r =
      dijkstra_multi(g, w, sources, /*hop_cap=*/3);
  EXPECT_EQ(r.max_hops(), 3);
  for (VertexId v = 0; v < 20; ++v) {
    if (v <= 3) {
      EXPECT_EQ(r.dist[v], 5 * v);
      EXPECT_EQ(r.hops[v], v);
      EXPECT_EQ(r.source[v], 0);
    } else {  // tentative labels beyond the cap are discarded
      EXPECT_EQ(r.dist[v], kUnreachedWeight);
      EXPECT_EQ(r.hops[v], kUnreached);
      EXPECT_EQ(r.source[v], kInvalidVertex);
    }
  }
}

TEST(Dijkstra, MultiSourceCellsAreConnected) {
  Rng rng(61);
  Graph g = gen::grid(10, 10).graph();
  std::vector<Weight> w = gen::unique_random_weights(g, rng);
  std::vector<VertexId> sources{0, 37, 99};
  ShortestPathResult r = dijkstra_multi(g, w, sources);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.source[v], kInvalidVertex);
    // Walking the recorded parents stays inside the owning cell and reaches
    // the owning source.
    VertexId x = v;
    while (r.parent[x] != kInvalidVertex) {
      EXPECT_EQ(r.source[x], r.source[v]);
      x = r.parent[x];
    }
    EXPECT_EQ(x, r.source[v]);
  }
}

}  // namespace
}  // namespace mns
