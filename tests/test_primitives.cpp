// Tests for the O(D) CONGEST primitives: broadcast, convergecast, leader
// election — correctness and round counts on trees, grids, and wheels.
#include <gtest/gtest.h>

#include "congest/primitives.hpp"
#include "congest/simulator.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::Simulator;

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

TEST(Broadcast, ReachesEveryoneInHeightRounds) {
  Graph g = gen::grid(6, 9).graph();
  RootedTree t = bfs_tree(g, 0);
  Simulator sim(g);
  congest::BroadcastResult r = congest::broadcast(sim, t, 777);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.received[v], 777);
  EXPECT_GE(r.rounds, t.height());
  EXPECT_LE(r.rounds, t.height() + 1);
}

TEST(Broadcast, SingleVertexTree) {
  Graph g = GraphBuilder(1).build();
  RootedTree t(0, {kInvalidVertex});
  Simulator sim(g);
  congest::BroadcastResult r = congest::broadcast(sim, t, 5);
  EXPECT_EQ(r.received[0], 5);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Convergecast, MinArrivesAtRoot) {
  Graph g = gen::grid(7, 7).graph();
  RootedTree t = bfs_tree(g, 24);  // center-ish root
  std::vector<std::int64_t> values(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) values[v] = 1000 + v * 3;
  values[13] = -42;
  Simulator sim(g);
  congest::ConvergecastResult r = congest::convergecast_min(sim, t, values);
  EXPECT_EQ(r.min_at_root, -42);
  EXPECT_GE(r.rounds, t.height());
  EXPECT_LE(r.rounds, t.height() + 1);
}

TEST(Convergecast, RejectsSizeMismatch) {
  Graph g = gen::path(4);
  RootedTree t = bfs_tree(g, 0);
  Simulator sim(g);
  std::vector<std::int64_t> too_short{1, 2};
  EXPECT_THROW((void)congest::convergecast_min(sim, t, too_short),
               InvariantViolation);
}

TEST(LeaderElection, FindsMinIdInDiameterRounds) {
  Graph g = gen::wheel(50);
  Simulator sim(g);
  congest::LeaderResult r = congest::elect_leader(sim);
  EXPECT_EQ(r.leader, 0);
  // Wheel diameter 2: flooding settles in ~3 rounds.
  EXPECT_LE(r.rounds, 4);
}

TEST(LeaderElection, PathTakesLinearRounds) {
  Graph g = gen::path(30);
  Simulator sim(g);
  congest::LeaderResult r = congest::elect_leader(sim);
  EXPECT_EQ(r.leader, 0);
  EXPECT_GE(r.rounds, 29);
}

TEST(DiameterEstimate, WithinFactorTwoOnGrid) {
  Graph g = gen::grid(9, 13).graph();
  int true_d = diameter_exact(g);
  congest::Simulator sim(g);
  congest::DiameterEstimate est = congest::estimate_diameter(sim, 0);
  EXPECT_LE(est.estimate, true_d);
  EXPECT_GE(2 * est.estimate, true_d);
  EXPECT_LE(est.rounds, 2 * (true_d + 2));  // two BFS floods
}

TEST(DiameterEstimate, ExactOnTrees) {
  Rng rng(3);
  Graph g = gen::random_tree(60, rng);
  congest::Simulator sim(g);
  congest::DiameterEstimate est = congest::estimate_diameter(sim, 0);
  EXPECT_EQ(est.estimate, diameter_exact(g));  // double sweep exact on trees
}

class PrimitiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrimitiveSweep, BroadcastConvergecastRoundTrip) {
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(150, rng);
  const Graph& g = eg.graph();
  RootedTree t = bfs_tree(g, 0);
  Simulator sim(g);
  std::vector<std::int64_t> values(g.num_vertices());
  std::int64_t expect = std::numeric_limits<std::int64_t>::max();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    values[v] = static_cast<std::int64_t>((v * 2654435761u) % 100003);
    expect = std::min(expect, values[v]);
  }
  auto up = congest::convergecast_min(sim, t, values);
  EXPECT_EQ(up.min_at_root, expect);
  auto down = congest::broadcast(sim, t, up.min_at_root);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(down.received[v], expect);
  // Round trip costs ~2 * height.
  EXPECT_LE(up.rounds + down.rounds, 2 * (t.height() + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveSweep, ::testing::Values(2, 6, 10));

}  // namespace
}  // namespace mns
