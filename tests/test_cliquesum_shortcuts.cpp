// Tests for the Theorem 7 / Theorem 5 / Theorem 6 construction pipeline:
// clique-sum shortcut building with folding, treewidth bags, apex oracles,
// and the end-to-end excluded-minor (L_k) path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/shortcut_engine.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

Shortcut engine_build(const Graph& g, const RootedTree& t, const Partition& p,
                      const StructuralCertificate& cert) {
  return ShortcutEngine::global().build(g, t, p, cert).shortcut;
}

TEST(TreewidthShortcut, ValidOnKTreeWithSmallBlock) {
  Rng rng(1);
  const int k = 3;
  gen::KTreeResult kt = gen::random_ktree(300, k, rng);
  RootedTree t = bfs_tree(kt.graph, 0);
  Partition p = voronoi_partition(kt.graph, 12, rng);
  ASSERT_EQ(p.validate(kt.graph), "");
  Shortcut sc =
      engine_build(kt.graph, t, p, treewidth_certificate(kt.decomposition));
  EXPECT_EQ(validate_tree_restricted(kt.graph, t, sc), "");
  ShortcutMetrics m = measure_shortcut(kt.graph, t, p, sc);
  // Theorem 5 shape: block O(k) (folding groups <= 3 bags, plus the parent
  // clique), congestion O(k log n).
  EXPECT_LE(m.block, 8 * (k + 1));
  EXPECT_LE(m.congestion, 20 * (k + 1) * 10);  // k log^2(n) slack
}

TEST(TreewidthShortcut, PathDecompositionLongChain) {
  // Worst case for unfolded construction: path-shaped decomposition tree.
  Rng rng(2);
  Graph g = gen::path(400);
  RootedTree t = bfs_tree(g, 0);
  TreeDecomposition td = min_degree_decomposition(g);
  Partition p = voronoi_partition(g, 10, rng);
  Shortcut sc = engine_build(g, t, p, treewidth_certificate(td));
  EXPECT_EQ(validate_tree_restricted(g, t, sc), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_LE(m.block, 12);
  // Folding keeps congestion polylogarithmic instead of Theta(depth) = 400.
  EXPECT_LE(m.congestion, 60);
}

TEST(FoldAblation, FoldingReducesCongestionOnDeepTrees) {
  // Long path of triangle bags: decomposition depth Theta(B). Parts span the
  // whole path so the unfolded global shortcut pays k * depth congestion.
  Rng rng(3);
  std::vector<gen::BagInput> bags;
  Graph tri = gen::complete(3);
  const int B = 120;
  for (int i = 0; i < B; ++i) bags.push_back({tri, {{0, 1}, {1, 2}}});
  // Chain the bags: each attaches to the previous one. compose_clique_sum
  // picks random parents, so build a chain by composing pairs incrementally
  // is not supported; instead rely on random attachment but measure both
  // variants on the SAME instance.
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.0, rng);
  ASSERT_EQ(r.decomposition.validate(r.graph), "");
  RootedTree t = bfs_tree(r.graph, 0);
  Partition p = voronoi_partition(r.graph, 8, rng);

  CliqueSumCertificate folded{r.decomposition};
  folded.fold = true;
  CliqueSumCertificate unfolded{r.decomposition};
  unfolded.fold = false;
  Shortcut sc_f = engine_build(r.graph, t, p, std::move(folded));
  Shortcut sc_u = engine_build(r.graph, t, p, std::move(unfolded));
  EXPECT_EQ(validate_tree_restricted(r.graph, t, sc_f), "");
  EXPECT_EQ(validate_tree_restricted(r.graph, t, sc_u), "");
  ShortcutMetrics mf = measure_shortcut(r.graph, t, p, sc_f);
  ShortcutMetrics mu = measure_shortcut(r.graph, t, p, sc_u);
  // Folding never loses validity; congestion should not be (much) worse.
  EXPECT_LE(mf.congestion, std::max(20, 2 * mu.congestion));
}

class CliqueSumShortcutSweep : public ::testing::TestWithParam<int> {};

TEST_P(CliqueSumShortcutSweep, ValidOnMixedBagCompositions) {
  Rng rng(GetParam());
  std::vector<gen::BagInput> bags;
  for (int i = 0; i < 10; ++i) {
    Graph g = (i % 2 == 0) ? gen::triangulated_grid(4, 4).graph()
                           : gen::random_ktree(20, 2, rng).graph;
    bags.push_back({g, gen::default_glue_cliques(g, 2)});
  }
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.2, rng);
  ASSERT_EQ(r.decomposition.validate(r.graph), "");
  RootedTree t = bfs_tree(r.graph, 0);
  Partition p = voronoi_partition(r.graph, 9, rng);
  ASSERT_EQ(p.validate(r.graph), "");

  for (bool fold : {true, false}) {
    CliqueSumCertificate cert{r.decomposition};
    cert.fold = fold;
    Shortcut sc = engine_build(r.graph, t, p, std::move(cert));
    EXPECT_EQ(validate_tree_restricted(r.graph, t, sc), "")
        << "fold=" << fold << " seed=" << GetParam();
    ShortcutMetrics m = measure_shortcut(r.graph, t, p, sc);
    // Parts must be far better connected than without shortcuts: compare
    // block count against the no-shortcut baseline (= part sizes).
    Shortcut empty;
    empty.edges_of_part.resize(p.num_parts());
    ShortcutMetrics m0 = measure_shortcut(r.graph, t, p, empty);
    EXPECT_LE(m.block, m0.block);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueSumShortcutSweep,
                         ::testing::Values(4, 9, 16, 25, 36));

class FoldValiditySweep : public ::testing::TestWithParam<int> {};

TEST_P(FoldValiditySweep, FoldedTreesKeepPerVertexConnectivity) {
  // The §2.2 folding must preserve the "bags containing v are connected"
  // property on arbitrary (random) clique-sum decomposition trees — the
  // invariant the global shortcut's LCA argument relies on.
  Rng rng(GetParam());
  std::vector<gen::BagInput> bags;
  for (int i = 0; i < 40; ++i) {
    Graph g = (i % 2 == 0) ? gen::complete(4)
                           : gen::random_ktree(8, 2, rng).graph;
    bags.push_back({g, gen::default_glue_cliques(g, 2)});
  }
  gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.25, rng);
  ASSERT_EQ(r.decomposition.validate(r.graph), "");
  FoldedDecomposition fd = fold_decomposition(r.decomposition);

  // Every original bag lands in exactly one group.
  std::vector<int> seen(r.decomposition.num_bags(), 0);
  for (const auto& grp : fd.groups)
    for (BagId b : grp) ++seen[b];
  for (BagId b = 0; b < r.decomposition.num_bags(); ++b) EXPECT_EQ(seen[b], 1);

  // Separators are at most double edges and reference real cliques.
  for (BagId v = 0; v < fd.num_nodes(); ++v) {
    EXPECT_LE(fd.parent_separator_bags[v].size(), 2u);
    for (BagId b : fd.parent_separator_bags[v])
      EXPECT_FALSE(r.decomposition.parent_clique(b).empty());
  }

  // Per-vertex node sets connected in the folded tree.
  std::vector<std::set<BagId>> nodes_of_vertex(r.graph.num_vertices());
  for (BagId node = 0; node < fd.num_nodes(); ++node)
    for (BagId b : fd.groups[node])
      for (VertexId v : r.decomposition.bag_vertices(b))
        nodes_of_vertex[v].insert(node);
  for (VertexId v = 0; v < r.graph.num_vertices(); ++v) {
    const auto& hs = nodes_of_vertex[v];
    int roots = 0;
    for (BagId x : hs)
      if (fd.parent[x] == kInvalidBag || !hs.count(fd.parent[x])) ++roots;
    EXPECT_EQ(roots, 1) << "vertex " << v << " seed " << GetParam();
  }

  // Folded depth is polylogarithmic in the bag count.
  double lg = std::log2(static_cast<double>(r.decomposition.num_bags()));
  EXPECT_LE(fd.depth, static_cast<int>(2 * lg * lg) + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldValiditySweep,
                         ::testing::Values(3, 7, 11, 19, 23, 42));

TEST(ExcludedMinorPipeline, EndToEndOnLkSample) {
  Rng rng(7);
  gen::AlmostEmbeddableParams bp;
  bp.apices = 1;
  bp.genus = 1;
  bp.vortex_depth = 2;
  bp.num_vortices = 1;
  bp.rows = 6;
  bp.cols = 6;
  bp.internal_per_vortex = 3;
  gen::LkSample s = gen::random_lk_graph(5, bp, 2, 0.1, rng);
  ASSERT_EQ(s.decomposition.validate(s.graph), "");

  RootedTree t = bfs_tree(s.graph, 0);
  Partition p = voronoi_partition(s.graph, 10, rng);
  ASSERT_EQ(p.validate(s.graph), "");

  CliqueSumCertificate cert{s.decomposition};
  cert.fold = true;
  cert.apex_aware = true;
  cert.bag_apices = s.global_apices;
  Shortcut sc = engine_build(s.graph, t, p, std::move(cert));
  EXPECT_EQ(validate_tree_restricted(s.graph, t, sc), "");
  ShortcutMetrics m = measure_shortcut(s.graph, t, p, sc);
  Shortcut empty;
  empty.edges_of_part.resize(p.num_parts());
  ShortcutMetrics m0 = measure_shortcut(s.graph, t, p, empty);
  EXPECT_LT(m.block, m0.block);
  EXPECT_GE(m.congestion, 1);
}

TEST(ApexOracle, DelegatesWhenNoApices) {
  // Without apices the apex oracle must behave exactly like its inner oracle.
  Rng rng(9);
  Graph g = gen::grid(6, 6).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 4, rng);
  Shortcut a =
      engine_build(g, t, p, apex_certificate({}, OracleKind::kSteiner));
  Shortcut b = engine_build(g, t, p, steiner_certificate());
  ASSERT_EQ(a.edges_of_part.size(), b.edges_of_part.size());
  for (std::size_t i = 0; i < a.edges_of_part.size(); ++i) {
    auto ea = a.edges_of_part[i];
    auto eb = b.edges_of_part[i];
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    EXPECT_EQ(ea, eb);
  }
}

TEST(ApexOracle, PartContainingApexGetsWholeTree) {
  Graph g = gen::wheel(10);
  RootedTree t = bfs_tree(g, 0);
  // Part 0 contains the hub (apex).
  Partition p = Partition::from_parts(10, {{0, 1}, {4, 5, 6}});
  Shortcut sc = engine_build(g, t, p, apex_certificate({0}));
  EXPECT_EQ(sc.edges_of_part[0].size(), 9u);  // all tree edges
}

}  // namespace
}  // namespace mns
