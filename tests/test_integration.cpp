// Cross-family integration suite: the full loop (generate -> BFS tree ->
// partition -> shortcut -> simulate) on EVERY generated family, verifying
// distributed MST against Kruskal, aggregation convergence, and min-cut
// bounds. This is the safety net for interactions between modules.
#include <gtest/gtest.h>

#include <algorithm>

#include "congest/aggregation.hpp"
#include "congest/session.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/geometric.hpp"
#include "gen/ktree.hpp"
#include "gen/lk_family.hpp"
#include "gen/lower_bound.hpp"
#include "gen/planar.hpp"
#include "gen/series_parallel.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

congest::Session greedy_session(const Graph& g) {
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(4242);
  return congest::Session(g, greedy_certificate(), std::move(cfg));
}

/// One named instance of any family.
struct Instance {
  std::string name;
  Graph graph;
};

std::vector<Instance> all_families(unsigned seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.push_back({"grid", gen::grid(9, 11).graph()});
  out.push_back({"triangulated_grid", gen::triangulated_grid(8, 8).graph()});
  out.push_back({"maximal_planar", gen::random_maximal_planar(120, rng).graph()});
  out.push_back({"torus", gen::torus_grid(7, 8).graph()});
  {
    EmbeddedGraph s = gen::surface_grid(8, 8, 2, rng);
    out.push_back({"genus2", s.graph()});
  }
  {
    EmbeddedGraph base = gen::torus_grid(6, 6);
    gen::VortexResult vr =
        gen::add_vortex(base.graph(), base.face_vertices(0), 2, 3, rng);
    out.push_back({"torus+vortex", std::move(vr.graph)});
  }
  out.push_back({"ktree3", gen::random_ktree(90, 3, rng).graph});
  out.push_back({"partial_ktree", gen::random_partial_ktree(90, 3, 0.3, rng).graph});
  out.push_back({"series_parallel", gen::random_series_parallel(80, rng)});
  {
    std::vector<gen::BagInput> bags;
    for (int i = 0; i < 5; ++i) {
      Graph g = gen::triangulated_grid(4, 4).graph();
      bags.push_back({g, gen::default_glue_cliques(g, 2)});
    }
    out.push_back({"cliquesum",
                   gen::compose_clique_sum(bags, 2, 0.2, rng).graph});
  }
  {
    gen::AlmostEmbeddableParams p;
    p.apices = 1;
    p.genus = 1;
    p.num_vortices = 1;
    p.vortex_depth = 2;
    p.rows = 5;
    p.cols = 5;
    out.push_back({"lk_sample", gen::random_lk_graph(4, p, 2, 0.1, rng).graph});
  }
  out.push_back({"wheel", gen::wheel(80)});
  {
    gen::ApexResult a =
        gen::add_apices(gen::grid(7, 7).graph(), 2, 0.25, rng);
    out.push_back({"grid+2apex", std::move(a.graph)});
  }
  out.push_back({"unit_disk", gen::unit_disk(100, 0.15, rng).graph});
  out.push_back({"lower_bound", gen::lower_bound_graph(6).graph});
  out.push_back({"erdos_renyi", gen::erdos_renyi(90, 140, true, rng)});
  return out;
}

class FamilySweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(FamilySweep, DistributedMstMatchesKruskal) {
  auto [family_index, seed] = GetParam();
  std::vector<Instance> fams = all_families(seed);
  ASSERT_LT(static_cast<std::size_t>(family_index), fams.size());
  Instance& inst = fams[family_index];
  ASSERT_TRUE(is_connected(inst.graph)) << inst.name;

  Rng rng(seed * 31 + 7);
  std::vector<Weight> w = gen::unique_random_weights(inst.graph, rng);
  congest::Session session = greedy_session(inst.graph);
  congest::RunReport res = session.solve(congest::Mst{w});
  std::vector<EdgeId> ref = congest::kruskal_mst(inst.graph, w);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(res.mst().edges, ref) << inst.name;
  EXPECT_GE(res.rounds, 1) << inst.name;
}

TEST_P(FamilySweep, AggregationConvergesOnVoronoiParts) {
  auto [family_index, seed] = GetParam();
  std::vector<Instance> fams = all_families(seed);
  Instance& inst = fams[family_index];
  Rng rng(seed * 13 + 1);
  Partition parts = voronoi_partition(inst.graph, 6, rng);
  ASSERT_EQ(parts.validate(inst.graph), "") << inst.name;

  Rng trng(2);
  VertexId c = approximate_center(inst.graph, trng);
  RootedTree t = RootedTree::from_bfs(bfs(inst.graph, c), c);
  Shortcut sc = ShortcutEngine::global()
                    .build(inst.graph, t, parts, greedy_certificate())
                    .shortcut;
  ASSERT_EQ(validate_tree_restricted(inst.graph, t, sc), "") << inst.name;

  congest::PartwiseAggregator agg(inst.graph, parts, sc);
  congest::Simulator sim(inst.graph);
  std::vector<congest::AggValue> init(inst.graph.num_vertices());
  for (VertexId v = 0; v < inst.graph.num_vertices(); ++v)
    init[v] = {static_cast<Weight>((v * 48271) % 9973), v};
  auto res = agg.aggregate_min(sim, init);  // convergence check is built in
  for (PartId p = 0; p < parts.num_parts(); ++p) {
    congest::AggValue expect{std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int32_t>::max()};
    for (VertexId v : parts.members(p)) expect = std::min(expect, init[v]);
    EXPECT_EQ(res.min_of_part[p], expect) << inst.name << " part " << p;
  }
}

std::string family_test_name(
    const ::testing::TestParamInfo<std::tuple<int, unsigned>>& info) {
  static const char* names[] = {
      "grid",       "triangulated_grid", "maximal_planar", "torus",
      "genus2",     "torus_vortex",      "ktree3",         "partial_ktree",
      "series_parallel", "cliquesum",    "lk_sample",      "wheel",
      "grid_2apex", "unit_disk",         "lower_bound",    "erdos_renyi"};
  return std::string(names[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Values(1u, 2u)),
                         family_test_name);

TEST(Integration, MinCutBoundedOnThreeFamilies) {
  Rng rng(5);
  std::vector<Instance> cases;
  cases.push_back({"maximal_planar", gen::random_maximal_planar(60, rng).graph()});
  cases.push_back({"ktree2", gen::random_ktree(50, 2, rng).graph});
  cases.push_back({"torus", gen::torus_grid(5, 6).graph()});
  for (auto& inst : cases) {
    std::vector<Weight> w = gen::random_weights(inst.graph, 1, 25, rng);
    Weight exact = congest::exact_min_cut(inst.graph, w);
    congest::Session session = greedy_session(inst.graph);
    congest::MinCut query{w};
    query.num_trees = 8;
    congest::RunReport res = session.solve(query);
    EXPECT_GE(res.min_cut().value, exact) << inst.name;
    EXPECT_LE(res.min_cut().value, 2 * exact + 1) << inst.name;
  }
}

TEST(Integration, UnitDiskGeneratorProperties) {
  Rng rng(9);
  gen::UnitDiskGraph udg = gen::unit_disk(150, 0.12, rng);
  EXPECT_TRUE(is_connected(udg.graph));
  EXPECT_EQ(udg.distances.size(), static_cast<std::size_t>(udg.graph.num_edges()));
  // Distances are consistent with the coordinates.
  for (EdgeId e = 0; e < udg.graph.num_edges(); ++e) {
    double dx = udg.x[udg.graph.edge(e).u] - udg.x[udg.graph.edge(e).v];
    double dy = udg.y[udg.graph.edge(e).u] - udg.y[udg.graph.edge(e).v];
    Weight expect = static_cast<Weight>(std::sqrt(dx * dx + dy * dy) * 1e6);
    EXPECT_NEAR(static_cast<double>(udg.distances[e]),
                static_cast<double>(expect), 1.0);
  }
  EXPECT_THROW(gen::unit_disk(0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(gen::unit_disk(5, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mns
