// Transport-seam contract tests (DESIGN.md §11 "Transport layer").
//
// The acceptance bar: running the CONGEST workloads over REAL sockets — two
// ranks exchanging cut-edge records via seq/ack/retransmit UDP delivery —
// must produce RunReports bit-identical (io::run_reports_identical) to the
// single-process reference, on every certificate family, for mst and
// sssp.approx, including under seeded drop/dup/reorder fault injection.
//
// Each loopback rank runs on its own thread (exchange() blocks on peer
// fences); the `parallel` ctest label puts this file in the TSan job, so
// the transport's cross-thread behavior — all sharing goes through the
// kernel's UDP sockets, nothing through memory — runs under a race
// detector too.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/report_json.hpp"
#include "serve/query_server.hpp"
#include "transport/loopback.hpp"

namespace mns {
namespace {

using congest::RunReport;
using congest::Session;
using congest::SolveOptions;
using congest::WorkloadParams;
using transport::FaultConfig;
using transport::InProcessTransport;
using transport::SocketTransport;
using transport::SocketTransportConfig;
using transport::TransportStats;

struct FamilyCase {
  std::string name;
  Graph graph;
  StructuralCertificate cert;
};

// One instance per certificate family, sized so mst and sssp.approx both
// run several shortcut-backed phases without making the fault-injection
// matrix slow.
std::vector<FamilyCase> transport_families() {
  std::vector<FamilyCase> out;
  Rng rng(41);
  out.push_back({"grid", gen::grid(7, 7).graph(), greedy_certificate()});
  {
    gen::KTreeResult kt = gen::random_ktree(60, 3, rng);
    out.push_back(
        {"ktree3", kt.graph, treewidth_certificate(kt.decomposition)});
  }
  {
    gen::ApexResult ar = gen::add_apices(gen::grid(6, 6).graph(), 1, 0.2, rng);
    out.push_back({"grid+apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(3, 3).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 3; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back(
        {"cliquesum", cs.graph, cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

WorkloadParams params_for(const Graph& g, Rng& wrng) {
  WorkloadParams p;
  p.weights = gen::unique_random_weights(g, wrng);
  return p;
}

RunReport reference_solve(const FamilyCase& fam, const std::string& workload,
                          const WorkloadParams& params) {
  Session session(fam.graph, fam.cert);
  return session.solve(workload, params, SolveOptions{});
}

/// Runs `workload` on `ranks` lock-step replicas wired by a loopback socket
/// cluster (one thread per rank) and returns every rank's report.
/// Exceptions inside a rank thread surface as test failures via `errors`.
std::vector<RunReport> distributed_solve(
    const FamilyCase& fam, const std::string& workload,
    const WorkloadParams& params, int ranks, const FaultConfig& faults,
    std::vector<TransportStats>* stats_out = nullptr) {
  auto cluster = transport::make_loopback_cluster(fam.graph, ranks,
                                                  SocketTransportConfig{},
                                                  faults);
  std::vector<RunReport> reports(static_cast<std::size_t>(ranks));
  std::vector<std::string> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Session session(fam.graph, fam.cert);
        session.set_transport(cluster[static_cast<std::size_t>(r)].get());
        reports[static_cast<std::size_t>(r)] =
            session.solve(workload, params, SolveOptions{});
        session.set_transport(nullptr);
        cluster[static_cast<std::size_t>(r)]->shutdown();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int r = 0; r < ranks; ++r)
    EXPECT_TRUE(errors[static_cast<std::size_t>(r)].empty())
        << "rank " << r << ": " << errors[static_cast<std::size_t>(r)];
  if (stats_out != nullptr) {
    stats_out->clear();
    for (int r = 0; r < ranks; ++r)
      stats_out->push_back(cluster[static_cast<std::size_t>(r)]->stats());
  }
  return reports;
}

// ------------------------------------------------------------- in-process --

TEST(TransportInProcess, InstalledTransportIsByteIdenticalToNone) {
  for (FamilyCase& fam : transport_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(43);
    WorkloadParams params = params_for(fam.graph, wrng);
    for (const char* workload : {"mst", "sssp.approx"}) {
      SCOPED_TRACE(workload);
      RunReport ref = reference_solve(fam, workload, params);

      Session session(fam.graph, fam.cert);
      InProcessTransport transport;
      session.set_transport(&transport);
      RunReport got = session.solve(workload, params, SolveOptions{});
      EXPECT_TRUE(io::run_reports_identical(got, ref))
          << io::run_report_to_json(got) << "\n"
          << io::run_report_to_json(ref);
      // Every finish_round() of the solve went through the seam.
      EXPECT_GT(transport.stats().rounds_exchanged, 0);
    }
  }
}

// -------------------------------------------------------- loopback parity --

TEST(TransportParity, TwoSocketRanksBitIdenticalOnEveryFamily) {
  for (FamilyCase& fam : transport_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(43);
    WorkloadParams params = params_for(fam.graph, wrng);
    for (const char* workload : {"mst", "sssp.approx"}) {
      SCOPED_TRACE(workload);
      RunReport ref = reference_solve(fam, workload, params);
      std::vector<TransportStats> stats;
      std::vector<RunReport> reports =
          distributed_solve(fam, workload, params, 2, FaultConfig{}, &stats);
      for (std::size_t r = 0; r < reports.size(); ++r) {
        EXPECT_TRUE(io::run_reports_identical(reports[r], ref))
            << "rank " << r << " diverged:\n"
            << io::run_report_to_json(reports[r]) << "\n"
            << io::run_report_to_json(ref);
      }
      // The network was load-bearing: deterministic transport counters
      // agree across ranks and real cut-edge records flowed.
      ASSERT_EQ(stats.size(), 2u);
      EXPECT_EQ(stats[0].rounds_exchanged, stats[1].rounds_exchanged);
      EXPECT_GT(stats[0].rounds_exchanged, 0);
      EXPECT_GT(stats[0].wire_records + stats[1].wire_records, 0);
    }
  }
}

TEST(TransportParity, FourSocketRanksBitIdenticalOnGrid) {
  FamilyCase fam{"grid", gen::grid(7, 7).graph(), greedy_certificate()};
  Rng wrng(43);
  WorkloadParams params = params_for(fam.graph, wrng);
  for (const char* workload : {"mst", "sssp.approx"}) {
    SCOPED_TRACE(workload);
    RunReport ref = reference_solve(fam, workload, params);
    std::vector<RunReport> reports =
        distributed_solve(fam, workload, params, 4, FaultConfig{});
    for (std::size_t r = 0; r < reports.size(); ++r)
      EXPECT_TRUE(io::run_reports_identical(reports[r], ref)) << "rank " << r;
  }
}

// -------------------------------------------------------- fault injection --

TEST(TransportFaults, SeededDropDupReorderConvergesToIdenticalReports) {
  FaultConfig faults;
  faults.seed = 99;
  faults.drop_rate = 0.15;  // >= the 10% the acceptance criteria demand
  faults.dup_rate = 0.05;
  faults.reorder_rate = 0.05;
  for (FamilyCase& fam : transport_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(43);
    WorkloadParams params = params_for(fam.graph, wrng);
    for (const char* workload : {"mst", "sssp.approx"}) {
      SCOPED_TRACE(workload);
      RunReport ref = reference_solve(fam, workload, params);
      std::vector<TransportStats> stats;
      std::vector<RunReport> reports =
          distributed_solve(fam, workload, params, 2, faults, &stats);
      for (std::size_t r = 0; r < reports.size(); ++r)
        EXPECT_TRUE(io::run_reports_identical(reports[r], ref))
            << "rank " << r << " diverged under faults:\n"
            << io::run_report_to_json(reports[r]) << "\n"
            << io::run_report_to_json(ref);
      for (std::size_t r = 0; r < stats.size(); ++r) {
        SCOPED_TRACE("rank " + std::to_string(r));
        const TransportStats& st = stats[r];
        // The adversary actually fired...
        EXPECT_GT(st.faults_dropped, 0);
        // ...every lost reliable packet was recovered by retransmission...
        EXPECT_GT(st.retransmits, 0);
        // ...and recovery stayed bounded: a fixed allowance per injected
        // fault (each drop/hold needs ~1 retransmit, backoff may add a
        // few), not a retransmit storm.
        EXPECT_LE(st.retransmits,
                  100 + 10 * (st.faults_dropped + st.faults_held +
                              st.faults_duplicated));
      }
    }
  }
}

// ------------------------------------------------- serving over transport --

TEST(TransportServe, QueryServerRanksBitIdenticalToLocalServer) {
  FamilyCase fam{"grid", gen::grid(7, 7).graph(), greedy_certificate()};
  Rng wrng(47);
  std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);

  std::vector<serve::Request> batch;
  {
    serve::Request mst;
    mst.workload = "mst";
    mst.params.weights = w;
    batch.push_back(mst);
    for (VertexId src : {0, 24}) {
      serve::Request sssp;
      sssp.workload = "sssp.approx";
      sssp.params.weights = w;
      sssp.params.source = src;
      batch.push_back(sssp);
    }
  }

  // Local reference server: warm pass builds, second pass is the reference.
  auto ref_core =
      std::make_shared<const congest::SolverCore>(fam.graph, fam.cert);
  serve::QueryServer ref_server(ref_core);
  (void)ref_server.warm(batch);
  std::vector<serve::Response> ref = ref_server.warm(batch);
  for (const serve::Response& r : ref) ASSERT_TRUE(r.ok()) << r.error;

  // Two transport-backed QueryServers, one per rank, both serving the SAME
  // batch sequence (warm + measured pass) in lock-step.
  auto cluster = transport::make_loopback_cluster(fam.graph, 2);
  std::vector<std::vector<serve::Response>> got(2);
  std::vector<std::string> errors(2);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto core =
            std::make_shared<const congest::SolverCore>(fam.graph, fam.cert);
        serve::ServerConfig cfg;
        cfg.workers = 1;
        cfg.transport = cluster[static_cast<std::size_t>(r)].get();
        serve::QueryServer server(core, cfg);
        (void)server.warm(batch);
        got[static_cast<std::size_t>(r)] = server.warm(batch);
        cluster[static_cast<std::size_t>(r)]->shutdown();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int r = 0; r < 2; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    ASSERT_TRUE(errors[static_cast<std::size_t>(r)].empty())
        << errors[static_cast<std::size_t>(r)];
    const auto& responses = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(responses.size(), ref.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << responses[i].error;
      EXPECT_TRUE(
          io::run_reports_identical(responses[i].report, ref[i].report))
          << "request " << i;
    }
  }
}

TEST(TransportServe, TransportRequiresSingleWorker) {
  Graph g = gen::grid(3, 3).graph();
  auto core = std::make_shared<const congest::SolverCore>(
      g, greedy_certificate());
  InProcessTransport transport;
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.transport = &transport;
  EXPECT_THROW(serve::QueryServer(core, cfg), InvariantViolation);
}

// ------------------------------------------------------------- lifecycle --

TEST(TransportLifecycle, SetTransportWithPendingSendsThrows) {
  Graph g = gen::path(3);
  congest::Simulator sim(g);
  InProcessTransport transport;
  sim.set_transport(&transport);  // between rounds: fine
  sim.send(0, g.find_edge(0, 1), congest::Message{});
  EXPECT_THROW(sim.set_transport(nullptr), std::logic_error);
  sim.finish_round();
  sim.set_transport(nullptr);  // drained: fine again
  EXPECT_EQ(transport.stats().rounds_exchanged, 1);
}

}  // namespace
}  // namespace mns
