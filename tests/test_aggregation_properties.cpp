// Property suite for Theorem 1's mechanism: measured aggregation rounds are
// controlled by shortcut quality, and degrade gracefully toward the isolated
// part diameter without shortcuts. All bounds here are deliberately loose
// (constant-factor slack) — they pin the *shape*, which is what the theorem
// claims.
#include <gtest/gtest.h>

#include <limits>

#include "congest/aggregation.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::AggValue;

std::vector<AggValue> hash_values(VertexId n) {
  std::vector<AggValue> init(n);
  for (VertexId v = 0; v < n; ++v)
    init[v] = {static_cast<Weight>((v * 2654435761u) % 1000003), v};
  return init;
}

long long measured_rounds(const Graph& g, const Partition& parts,
                          const Shortcut& sc) {
  congest::PartwiseAggregator agg(g, parts, sc);
  congest::Simulator sim(g);
  (void)agg.aggregate_min(sim, hash_values(g.num_vertices()));
  return sim.rounds();
}

TEST(AggregationProperty, NoShortcutRoundsTrackPartDiameter) {
  // Ring sector of length L floods in ~L/2..L rounds.
  for (int sectors : {2, 4, 8}) {
    const VertexId n = 962;
    Graph g = gen::wheel(n);
    Partition parts = ring_sectors(n, 1, n - 1, sectors);
    Shortcut none;
    none.edges_of_part.resize(parts.num_parts());
    long long rounds = measured_rounds(g, parts, none);
    int len = (n - 1) / sectors;
    EXPECT_GE(rounds, len / 2 - 2) << sectors;
    EXPECT_LE(rounds, 2 * len + 4) << sectors;
  }
}

TEST(AggregationProperty, RoundsBoundedByQualityTimesConstant) {
  // With a tree-restricted shortcut, rounds <= C * (q + d_T): each block is
  // a tree fragment of depth <= d_T, congestion delays are <= c per edge.
  struct Case {
    Graph g;
    Partition parts;
  };
  std::vector<Case> cases;
  {
    const VertexId n = 402;
    cases.push_back({gen::wheel(n), ring_sectors(n, 1, n - 1, 4)});
  }
  {
    const int s = 24;
    cases.push_back(
        {gen::grid(s, s).graph(), grid_serpentines(s, s, 4)});
  }
  {
    Rng rng(3);
    Graph g = gen::random_maximal_planar(300, rng).graph();
    cases.push_back({g, voronoi_partition(g, 10, rng)});
  }
  for (auto& cs : cases) {
    Rng rng(1);
    VertexId c = approximate_center(cs.g, rng);
    RootedTree t = RootedTree::from_bfs(bfs(cs.g, c), c);
    for (const StructuralCertificate& cert :
         {greedy_certificate(), steiner_certificate()}) {
      BuildResult r = ShortcutEngine::global().build(cs.g, t, cs.parts, cert);
      const ShortcutMetrics& m = r.metrics;
      long long rounds = measured_rounds(cs.g, cs.parts, r.shortcut);
      EXPECT_LE(rounds, 6 * (m.quality + m.tree_diameter) + 20)
          << "n=" << cs.g.num_vertices();
    }
  }
}

TEST(AggregationProperty, ShortcutNeverBreaksCorrectnessUnderHighCongestion) {
  // Deliberately terrible shortcut: every part gets the whole tree. The
  // answer must still be right; only rounds inflate.
  const VertexId n = 202;
  Graph g = gen::wheel(n);
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = ring_sectors(n, 1, n - 1, 6);
  Shortcut bloated;
  bloated.edges_of_part.resize(parts.num_parts());
  for (PartId p = 0; p < parts.num_parts(); ++p)
    for (VertexId v = 1; v < n; ++v)
      bloated.edges_of_part[p].push_back(t.parent_edge(v));
  congest::PartwiseAggregator agg(g, parts, bloated);
  congest::Simulator sim(g);
  auto init = hash_values(n);
  auto res = agg.aggregate_min(sim, init);
  for (PartId p = 0; p < parts.num_parts(); ++p) {
    AggValue expect{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::int32_t>::max()};
    for (VertexId v : parts.members(p)) expect = std::min(expect, init[v]);
    EXPECT_EQ(res.min_of_part[p], expect);
  }
}

TEST(AggregationProperty, SingletonPartsFinishInstantly) {
  Graph g = gen::grid(10, 10).graph();
  std::vector<PartId> part_of(g.num_vertices(), kNoPart);
  for (VertexId v = 0; v < 20; ++v) part_of[v] = v;  // 20 singletons
  Partition parts(part_of);
  Shortcut sc;
  sc.edges_of_part.resize(parts.num_parts());
  long long rounds = measured_rounds(g, parts, sc);
  EXPECT_EQ(rounds, 0);
}

TEST(AggregationProperty, UnassignedVerticesDoNotParticipate) {
  // Vertices outside all parts must not affect results.
  Graph g = gen::path(10);
  Partition parts = Partition::from_parts(10, {{0, 1, 2}});
  Shortcut sc;
  sc.edges_of_part.resize(1);
  congest::PartwiseAggregator agg(g, parts, sc);
  congest::Simulator sim(g);
  std::vector<AggValue> init(10, AggValue{-999, 0});  // junk everywhere
  init[0] = {5, 0};
  init[1] = {4, 1};
  init[2] = {6, 2};
  auto res = agg.aggregate_min(sim, init);
  EXPECT_EQ(res.min_of_part[0].value, 4);
  EXPECT_EQ(res.min_of_part[0].aux, 1);
}

class QualityMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(QualityMonotonicity, BetterQualityNeverMuchSlowerOnWheel) {
  // On the wheel: quality-3 shortcuts finish in O(1) rounds while the
  // no-shortcut baseline needs Theta(n / sectors); the ordering must hold
  // across sizes.
  const VertexId n = 200 * GetParam() + 2;
  Graph g = gen::wheel(n);
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = ring_sectors(n, 1, n - 1, 4);
  Shortcut good =
      ShortcutEngine::global().build(g, t, parts, greedy_certificate())
          .shortcut;
  Shortcut none;
  none.edges_of_part.resize(parts.num_parts());
  long long fast = measured_rounds(g, parts, good);
  long long slow = measured_rounds(g, parts, none);
  EXPECT_LT(4 * fast, slow) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, QualityMonotonicity,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace mns
