// Contract tests for the rewritten CONGEST simulator hot path: capacity
// enforcement, skip_rounds accounting, inbox view validity after
// finish_round, frontier (delivered_to) bookkeeping across sparse rounds —
// the invariants the buffer-reuse/counting-CSR implementation must uphold —
// plus the engine's round-accounting contract (quiescence costs no rounds).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "congest/simulator.hpp"
#include "congest/vertex_program.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

namespace mns {
namespace {

using congest::Delivery;
using congest::Inbox;
using congest::Message;
using congest::Simulator;

TEST(SimulatorContract, CapacityViolationThrows) {
  Graph g = gen::path(3);
  Simulator sim(g);
  EdgeId e = g.find_edge(0, 1);
  sim.send(0, e, Message{});
  EXPECT_THROW(sim.send(0, e, Message{}), std::invalid_argument);
  sim.send(1, e, Message{});  // opposite direction has its own capacity
  sim.finish_round();
  sim.send(0, e, Message{});  // capacity resets each round
  EXPECT_THROW(sim.send(0, e, Message{}), std::invalid_argument);
  sim.finish_round();
  EXPECT_EQ(sim.rounds(), 2);
  EXPECT_EQ(sim.messages_sent(), 3);
}

TEST(SimulatorContract, EndpointViolationNamesVertexAndEdge) {
  // The what() string must identify WHICH send was misdirected — the `from`
  // vertex and the edge id appear verbatim, for both the sequential and the
  // staged path (debuggability contract of Simulator::send/stage_send).
  Graph g = gen::path(3);
  Simulator sim(g);
  const EdgeId e = g.find_edge(1, 2);
  const auto assert_ids_in_what = [&](const auto& call) {
    try {
      call();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& ex) {
      const std::string what = ex.what();
      EXPECT_NE(what.find("vertex 0"), std::string::npos) << what;
      EXPECT_NE(what.find("edge " + std::to_string(e)), std::string::npos)
          << what;
    }
  };
  assert_ids_in_what([&] { sim.send(0, e, Message{}); });
  assert_ids_in_what([&] { sim.stage_send(0, 0, e, Message{}); });
  // A throwing call stages nothing: the next round is clean.
  sim.finish_round();
  EXPECT_EQ(sim.messages_sent(), 0);
}

TEST(SimulatorContract, InboxOutOfRangeIsCaught) {
  // inbox(v) validates v like send() validates endpoints: indexing
  // inbox_count_ with a bogus id must throw, not read out of bounds.
  Graph g = gen::path(3);
  Simulator sim(g);
  EXPECT_THROW((void)sim.inbox(-1), std::out_of_range);
  EXPECT_THROW((void)sim.inbox(3), std::out_of_range);
  sim.send(0, g.find_edge(0, 1), Message{0, 0, 5});
  sim.finish_round();
  EXPECT_THROW((void)sim.inbox(1000), std::out_of_range);
  ASSERT_EQ(sim.inbox(1).size(), 1u);  // in-range access unaffected
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 5);
  EXPECT_TRUE(sim.inbox(2).empty());
}

TEST(SimulatorContract, SkipRoundsAccounting) {
  Graph g = gen::path(2);
  Simulator sim(g);
  sim.skip_rounds(7);
  EXPECT_EQ(sim.rounds(), 7);
  sim.skip_rounds(0);
  EXPECT_EQ(sim.rounds(), 7);
  sim.send(0, 0, Message{});
  sim.finish_round();
  EXPECT_EQ(sim.rounds(), 8);
  sim.skip_rounds(5);
  EXPECT_EQ(sim.rounds(), 13);
  EXPECT_THROW(sim.skip_rounds(-1), std::invalid_argument);
  // Skipping rounds must not disturb delivered inboxes.
  EXPECT_EQ(sim.inbox(1).size(), 1u);
}

TEST(SimulatorContract, SkipRoundsRejectsNegativeWithoutCorruption) {
  // A negative skip must throw std::invalid_argument and leave the round
  // counter untouched — silently subtracting would corrupt every
  // charged-construction comparison downstream.
  Graph g = gen::path(3);
  Simulator sim(g);
  sim.skip_rounds(3);
  EXPECT_THROW(sim.skip_rounds(-1), std::invalid_argument);
  EXPECT_EQ(sim.rounds(), 3);
  EXPECT_THROW(sim.skip_rounds(std::numeric_limits<long long>::min()),
               std::invalid_argument);
  EXPECT_EQ(sim.rounds(), 3);
  sim.skip_rounds(0);  // zero stays a no-op, not an error
  EXPECT_EQ(sim.rounds(), 3);
}

TEST(SimulatorContract, StagedSendsMergeInShardOrder) {
  // stage_send + finish_round must reproduce the sequential send order:
  // shard 0's entries first, then shard 1's, each in staging order — so
  // inbox contents and delivered_to() are bit-identical to a sequential run
  // that sent in that same canonical order.
  Graph g = gen::star(4);  // center 0, leaves 1..4
  Simulator sim(g, congest::ExecutionPolicy{2});
  ASSERT_EQ(sim.num_shards(), 2);
  sim.stage_send(0, 1, g.find_edge(0, 1), Message{0, 0, 10});
  sim.stage_send(0, 2, g.find_edge(0, 2), Message{0, 0, 20});
  sim.stage_send(1, 3, g.find_edge(0, 3), Message{0, 0, 30});
  sim.stage_send(1, 4, g.find_edge(0, 4), Message{0, 0, 40});
  sim.finish_round();
  EXPECT_EQ(sim.messages_sent(), 4);
  Inbox in = sim.inbox(0);
  ASSERT_EQ(in.size(), 4u);
  for (VertexId i = 0; i < 4; ++i) {
    EXPECT_EQ(in[i].from, i + 1);
    EXPECT_EQ(in[i].msg.value, 10 * (i + 1));
  }
}

TEST(SimulatorContract, DirectSendsMergeBeforeStagedOnes) {
  Graph g = gen::star(2);
  Simulator sim(g, congest::ExecutionPolicy{2});
  sim.stage_send(1, 2, g.find_edge(0, 2), Message{0, 0, 2});
  sim.send(1, g.find_edge(0, 1), Message{0, 0, 1});
  sim.finish_round();
  Inbox in = sim.inbox(0);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0].msg.value, 1);  // direct first, then shards in order
  EXPECT_EQ(in[1].msg.value, 2);
}

TEST(SimulatorContract, StagedCapacityViolationThrowsAtMerge) {
  // The capacity check for staged sends is deferred to the deterministic
  // merge (stage_send itself must not touch shared state); the violation
  // still throws, from finish_round — BEFORE the round is counted or any
  // inbox is disturbed, like sequential send()'s validate-before-mutate.
  Graph g = gen::path(2);
  Simulator sim(g, congest::ExecutionPolicy{2});
  sim.stage_send(0, 0, 0, Message{});
  sim.stage_send(1, 0, 0, Message{});  // same directed edge, other shard
  EXPECT_THROW(sim.finish_round(), std::invalid_argument);
  EXPECT_EQ(sim.rounds(), 0);
  EXPECT_EQ(sim.messages_sent(), 0);
  // The poisoned round's staged sends are discarded: the simulator stays
  // usable, and the slot is free again next round.
  sim.stage_send(0, 0, 0, Message{0, 0, 7});
  sim.finish_round();
  EXPECT_EQ(sim.rounds(), 1);
  ASSERT_EQ(sim.inbox(1).size(), 1u);
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 7);
  // Direct-vs-staged collisions are caught the same way; the direct send
  // stays pending (exactly sequential send()'s behavior after a throw) and
  // is delivered by the next clean finish_round.
  Simulator sim2(g, congest::ExecutionPolicy{2});
  sim2.send(0, 0, Message{0, 0, 9});
  sim2.stage_send(0, 0, 0, Message{});
  EXPECT_THROW(sim2.finish_round(), std::invalid_argument);
  sim2.finish_round();
  EXPECT_EQ(sim2.rounds(), 1);
  ASSERT_EQ(sim2.inbox(1).size(), 1u);
  EXPECT_EQ(sim2.inbox(1)[0].msg.value, 9);
}

TEST(SimulatorContract, StagingWorksAtDefaultSingleShardPolicy) {
  // The documented staging contract — shard ids in [0, num_shards()) — must
  // hold for a default-constructed simulator too, not only after a policy
  // round-trip.
  Graph g = gen::path(2);
  Simulator sim(g);
  ASSERT_EQ(sim.num_shards(), 1);
  sim.stage_send(0, 0, 0, Message{0, 0, 5});
  sim.finish_round();
  ASSERT_EQ(sim.inbox(1).size(), 1u);
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 5);
}

TEST(SimulatorContract, StageSendValidatesEagerlyWhereItCan) {
  Graph g = gen::path(3);
  Simulator sim(g, congest::ExecutionPolicy{2});
  // Endpoint validation is immediate, like send().
  EXPECT_THROW(sim.stage_send(0, 2, g.find_edge(0, 1), Message{}),
               std::invalid_argument);
  // Shard ids outside the policy's width are immediate errors too.
  EXPECT_THROW(sim.stage_send(2, 0, g.find_edge(0, 1), Message{}),
               std::out_of_range);
  EXPECT_THROW(sim.stage_send(-1, 0, g.find_edge(0, 1), Message{}),
               std::out_of_range);
}

TEST(SimulatorContract, PolicyChangeWithPendingSendsThrows) {
  Graph g = gen::path(2);
  Simulator sim(g);
  sim.send(0, 0, Message{});
  EXPECT_THROW(sim.set_execution_policy(congest::ExecutionPolicy{4}),
               std::logic_error);
  sim.finish_round();
  sim.set_execution_policy(congest::ExecutionPolicy{4});  // between rounds: ok
  EXPECT_EQ(sim.num_shards(), 4);
  sim.stage_send(3, 0, 0, Message{});
  EXPECT_THROW(sim.set_execution_policy(congest::ExecutionPolicy{1}),
               std::logic_error);
  sim.finish_round();
  sim.set_execution_policy(congest::ExecutionPolicy{1});
  EXPECT_EQ(sim.num_shards(), 1);
}

TEST(SimulatorContract, ExecutionPolicyResolution) {
  EXPECT_EQ(congest::ExecutionPolicy{1}.resolved(), 1);
  EXPECT_EQ(congest::ExecutionPolicy{6}.resolved(), 6);
  // 0 = hardware width, whatever it is — but always at least one shard.
  EXPECT_GE(congest::ExecutionPolicy{0}.resolved(), 1);
}

TEST(SimulatorContract, InboxSpanValidAfterFinishRound) {
  Graph g = gen::star(4);  // center 0, leaves 1..4
  Simulator sim(g);
  for (VertexId leaf = 1; leaf <= 4; ++leaf)
    sim.send(leaf, g.find_edge(0, leaf), Message{leaf, 0, 10 * leaf});
  sim.finish_round();
  Inbox in = sim.inbox(0);
  ASSERT_EQ(in.size(), 4u);
  // Per-destination order is send order.
  for (VertexId i = 0; i < 4; ++i) {
    EXPECT_EQ(in[i].from, i + 1);
    EXPECT_EQ(in[i].msg.value, 10 * (i + 1));
    EXPECT_EQ(in[i].edge, g.find_edge(0, i + 1));
  }
  // The span must survive further sends (which only queue) ...
  sim.send(0, g.find_edge(0, 1), Message{0, 0, 99});
  ASSERT_EQ(sim.inbox(0).size(), 4u);
  EXPECT_EQ(sim.inbox(0)[2].msg.value, 30);
  // ... and be replaced, not corrupted, by the next finish_round.
  sim.finish_round();
  EXPECT_TRUE(sim.inbox(0).empty());
  ASSERT_EQ(sim.inbox(1).size(), 1u);
  EXPECT_EQ(sim.inbox(1)[0].msg.value, 99);
}

TEST(SimulatorContract, FrontierResetsAcrossSparseRounds) {
  // Different destinations each round on a large graph: counts must never
  // leak from one round into the next (the frontier-reset invariant of the
  // O(messages) finish_round).
  Graph g = gen::cycle(1000);
  Simulator sim(g);
  for (VertexId v = 0; v < 1000; v += 100) {
    sim.send(v, g.find_edge(v, v + 1), Message{0, 0, v});
    sim.finish_round();
    // Exactly one node has mail, and it is v+1.
    ASSERT_EQ(sim.delivered_to().size(), 1u);
    EXPECT_EQ(sim.delivered_to()[0], v + 1);
    ASSERT_EQ(sim.inbox(v + 1).size(), 1u);
    EXPECT_EQ(sim.inbox(v + 1)[0].msg.value, v);
    // Last round's receiver is clean again.
    if (v > 0) EXPECT_TRUE(sim.inbox(v - 100 + 1).empty());
    // Spot-check nodes that never received anything.
    EXPECT_TRUE(sim.inbox(v == 0 ? 500 : 0).empty());
  }
  EXPECT_EQ(sim.rounds(), 10);
  EXPECT_EQ(sim.messages_sent(), 10);
}

TEST(SimulatorContract, DeliveredToMatchesReceivers) {
  Rng rng(5);
  Graph g = gen::random_maximal_planar(200, rng).graph();
  Simulator sim(g);
  // Even vertices broadcast to all neighbours.
  std::set<VertexId> expected;
  for (VertexId v = 0; v < g.num_vertices(); v += 2) {
    auto eids = g.incident_edges(v);
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < eids.size(); ++i) {
      sim.send(v, eids[i], Message{});
      expected.insert(nbrs[i]);
    }
  }
  sim.finish_round();
  std::set<VertexId> got(sim.delivered_to().begin(), sim.delivered_to().end());
  EXPECT_EQ(got.size(), sim.delivered_to().size());  // no duplicates
  EXPECT_EQ(got, expected);
  std::size_t total = 0;
  for (VertexId v : sim.delivered_to()) total += sim.inbox(v).size();
  EXPECT_EQ(total, static_cast<std::size_t>(sim.messages_sent()));
  // Empty round: frontier clears completely.
  sim.finish_round();
  EXPECT_TRUE(sim.delivered_to().empty());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_TRUE(sim.inbox(v).empty());
}

TEST(SimulatorContract, SteadyStateBufferReuseOverManyRounds) {
  // A long ping-pong: correctness (value round-trips intact) and accounting
  // over thousands of reused rounds.
  Graph g = gen::path(2);
  Simulator sim(g);
  std::int64_t token = 42;
  for (int i = 0; i < 5000; ++i) {
    VertexId from = i % 2;
    sim.send(from, 0, Message{0, 0, token});
    sim.finish_round();
    ASSERT_EQ(sim.inbox(1 - from).size(), 1u);
    token = sim.inbox(1 - from)[0].msg.value + 1;
  }
  EXPECT_EQ(token, 42 + 5000);
  EXPECT_EQ(sim.rounds(), 5000);
  EXPECT_EQ(sim.messages_sent(), 5000);
}

// A token relay 0 -> goal expressed as a VertexProgram; the round-accounting
// tests below used to exercise the (removed) run_round_loop adapter and now
// pin the same contract on run_vertex_program: quiescence is checked BEFORE
// a round is counted, so a message-free final check costs no rounds.
struct RelayProgram {
  const Graph* g;
  VertexId goal;
  VertexId at = 0;
  std::vector<VertexId> cur{0};

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return at == goal ? std::span<const VertexId>()
                      : std::span<const VertexId>(cur);
  }
  void send(VertexId v, congest::VertexSender& out) {
    out.send(g->find_edge(v, v + 1), Message{});
  }
  void receive(VertexId v, Inbox, const congest::ShardContext&) { at = v; }
  void end_round() { cur[0] = at; }
};

TEST(RoundAccountingContract, CountsRoundsAndSkipsFinalCheck) {
  Graph g = gen::path(6);
  Simulator sim(g);
  // Relay a token 0 -> 5: five rounds, and the terminating frontier check
  // (empty) must not consume a round.
  RelayProgram prog{&g, 5};
  long long rounds = congest::run_vertex_program(sim, prog);
  EXPECT_EQ(prog.at, 5);
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(sim.rounds(), 5);
}

TEST(RoundAccountingContract, ImmediateQuiescenceCostsNothing) {
  Graph g = gen::path(2);
  Simulator sim(g);
  RelayProgram prog{&g, 0};  // frontier empty from the start
  long long rounds = congest::run_vertex_program(sim, prog);
  EXPECT_EQ(rounds, 0);
  EXPECT_EQ(sim.rounds(), 0);
  EXPECT_EQ(sim.messages_sent(), 0);
}

TEST(RoundAccountingContract, ConsecutiveProgramsAccumulateOnTheSimulator) {
  Graph g = gen::path(3);
  Simulator sim(g);
  long long total = 0;
  for (int rep = 0; rep < 3; ++rep) {
    RelayProgram prog{&g, 2};
    long long rounds = congest::run_vertex_program(sim, prog);
    EXPECT_EQ(rounds, 2);
    total += rounds;
  }
  EXPECT_EQ(total, 6);
  EXPECT_EQ(sim.rounds(), 6);
}

}  // namespace
}  // namespace mns
