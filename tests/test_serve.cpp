// serve::QueryServer contract tests (DESIGN.md §10): N worker threads
// solving {mst, sssp.approx, mincut} concurrently against ONE shared
// SolverCore must produce RunReports bit-identical (io::run_reports_identical)
// to the same queries run sequentially, with charged_construction_rounds == 0
// for every post-warm-up request — on every certificate family, at worker
// widths {2, 4, 8}. The TSan job runs this file under `-L parallel`, so the
// core's read-mostly cache discipline (shared-locked lookups, build outside
// the lock, atomic LRU stamps) is exercised under a real race detector.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/report_json.hpp"
#include "serve/query_server.hpp"

namespace mns {
namespace {

using congest::SolverCore;
using serve::QueryServer;
using serve::Request;
using serve::Response;
using serve::ServerConfig;

struct FamilyCase {
  std::string name;
  Graph graph;
  StructuralCertificate cert;
};

// One instance per certificate family (greedy / treewidth / apex /
// clique-sum) — small enough for the TSan matrix, large enough that every
// workload runs multiple shortcut-backed phases.
std::vector<FamilyCase> serve_families() {
  std::vector<FamilyCase> out;
  Rng rng(41);
  out.push_back({"grid", gen::grid(7, 7).graph(), greedy_certificate()});
  {
    gen::KTreeResult kt = gen::random_ktree(60, 3, rng);
    out.push_back({"ktree3", kt.graph, treewidth_certificate(kt.decomposition)});
  }
  {
    gen::ApexResult ar = gen::add_apices(gen::grid(6, 6).graph(), 1, 0.2, rng);
    out.push_back({"grid+apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(3, 3).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < 3; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back({"cliquesum", cs.graph, cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

// The serving mix: an MST, a min cut, and a k-source ApproxSssp batch (the
// server normalizes these to shared-partition solves).
std::vector<Request> mixed_batch(const Graph& g,
                                 const std::vector<Weight>& w) {
  std::vector<Request> batch;
  Request mst;
  mst.workload = "mst";
  mst.params.weights = w;
  batch.push_back(mst);
  Request cut;
  cut.workload = "mincut";
  cut.params.weights = w;
  cut.params.num_trees = 4;
  batch.push_back(cut);
  const VertexId n = g.num_vertices();
  for (VertexId src = 0; src < n; src += n / 4 + 1) {
    Request sssp;
    sssp.workload = "sssp.approx";
    sssp.params.weights = w;
    sssp.params.source = src;
    batch.push_back(sssp);
  }
  // Repeat the whole mix so the steady state (every request a cache hit) is
  // part of the batch itself, not just of a second call.
  std::vector<Request> twice = batch;
  twice.insert(twice.end(), batch.begin(), batch.end());
  return twice;
}

TEST(ServeParity, ConcurrentWidthsBitIdenticalToSequentialOnEveryFamily) {
  for (FamilyCase& fam : serve_families()) {
    SCOPED_TRACE(fam.name);
    Rng wrng(43);
    std::vector<Weight> w = gen::unique_random_weights(fam.graph, wrng);
    std::vector<Request> batch = mixed_batch(fam.graph, w);

    auto core = std::make_shared<const SolverCore>(fam.graph, fam.cert);
    QueryServer warmer(core);
    // First sequential pass constructs every distinct shortcut the mix
    // needs; the second is the post-warm-up sequential reference.
    (void)warmer.warm(batch);
    std::vector<Response> ref = warmer.warm(batch);
    for (const Response& r : ref) {
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(r.report.charged_construction_rounds, 0);
      EXPECT_EQ(r.report.cache_misses, 0);
    }

    for (int width : {2, 4, 8}) {
      SCOPED_TRACE("width=" + std::to_string(width));
      ServerConfig cfg;
      cfg.workers = width;
      QueryServer srv(core, cfg);
      std::vector<Response> got = srv.serve(batch);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i].ok()) << got[i].error;
        // Bit-identical to sequential: every deterministic field including
        // the full payload (wall_ms is the one field allowed to differ).
        EXPECT_TRUE(io::run_reports_identical(got[i].report, ref[i].report))
            << "request " << i << " (" << batch[i].workload << ") diverged:\n"
            << io::run_report_to_json(got[i].report) << "\n"
            << io::run_report_to_json(ref[i].report);
        EXPECT_EQ(got[i].report.charged_construction_rounds, 0);
      }
    }
  }
}

TEST(ServeBatching, SharedPartitionSsspBatchHitsOneShortcut) {
  Graph g = gen::grid(7, 7).graph();
  Rng wrng(47);
  std::vector<Weight> w = gen::unique_random_weights(g, wrng);
  auto core = std::make_shared<const SolverCore>(g, greedy_certificate());

  std::vector<Request> batch;
  for (VertexId src : {VertexId{0}, VertexId{12}, VertexId{30}, VertexId{48}}) {
    Request r;
    r.workload = "sssp.approx";
    r.params.weights = w;
    r.params.source = src;
    r.params.wavefront_seeds = true;  // the server must normalize this away
    batch.push_back(r);
  }

  ServerConfig cfg;
  cfg.workers = 2;
  QueryServer srv(core, cfg);
  std::vector<Response> first = srv.warm(batch);
  ASSERT_TRUE(first[0].ok()) << first[0].error;
  // Source-independent cells: after request 0 built the batch's partitions,
  // every OTHER source reuses them — zero further constructions.
  for (std::size_t i = 1; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok()) << first[i].error;
    EXPECT_EQ(first[i].report.cache_misses, 0) << "source " << i;
    EXPECT_EQ(first[i].report.charged_construction_rounds, 0);
    EXPECT_GT(first[i].report.cache_hits, 0);
  }
  EXPECT_EQ(srv.requests_served(), static_cast<long long>(batch.size()));
}

TEST(ServeSharing, SessionWarmedCoreServesHitsToEveryWorker) {
  Graph g = gen::grid(7, 7).graph();
  Rng wrng(53);
  std::vector<Weight> w = gen::unique_random_weights(g, wrng);
  // Warm through the FACADE, serve through the server: one core, two
  // surfaces, shared cache.
  congest::Session session(g, greedy_certificate());
  (void)session.solve(congest::Mst{w});
  ServerConfig cfg;
  cfg.workers = 4;
  QueryServer srv(session.core_ptr(), cfg);
  Request mst;
  mst.workload = "mst";
  mst.params.weights = w;
  std::vector<Response> got = srv.serve(std::vector<Request>(8, mst));
  for (const Response& r : got) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.report.cache_misses, 0);
    EXPECT_EQ(r.report.charged_construction_rounds, 0);
  }
}

TEST(ServeErrors, BadRequestsReportErrorsWithoutPoisoningTheBatch) {
  Graph g = gen::grid(6, 6).graph();
  Rng wrng(59);
  std::vector<Weight> w = gen::unique_random_weights(g, wrng);
  auto core = std::make_shared<const SolverCore>(g, greedy_certificate());
  ServerConfig cfg;
  cfg.workers = 2;
  QueryServer srv(core, cfg);

  std::vector<Request> batch;
  Request good;
  good.workload = "mst";
  good.params.weights = w;
  // Warm first so the two good requests are both steady-state (comparable).
  (void)srv.warm({good});
  batch.push_back(good);
  Request unknown;
  unknown.workload = "no-such-workload";
  batch.push_back(unknown);
  Request bad_weights;
  bad_weights.workload = "mst";
  bad_weights.params.weights = {1, 2, 3};  // wrong count
  batch.push_back(bad_weights);
  batch.push_back(good);

  std::vector<Response> got = srv.serve(batch);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].ok()) << got[0].error;
  EXPECT_FALSE(got[1].ok());
  EXPECT_NE(got[1].error.find("no-such-workload"), std::string::npos);
  EXPECT_FALSE(got[2].ok());
  EXPECT_TRUE(got[3].ok()) << got[3].error;
  EXPECT_TRUE(io::run_reports_identical(got[0].report, got[3].report));
  // JSON wrapping keeps status and document together.
  EXPECT_NE(serve::response_to_json(got[0]).find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(serve::response_to_json(got[1]).find("\"ok\":false"),
            std::string::npos);
}

TEST(ServeSnapshot, FromSnapshotServesWarmBitIdenticalReports) {
  Graph g = gen::grid(7, 7).graph();
  Rng wrng(61);
  std::vector<Weight> w = gen::unique_random_weights(g, wrng);
  std::vector<Request> batch = mixed_batch(g, w);

  const std::string path = ::testing::TempDir() + "serve_snapshot.mns";
  std::vector<Response> ref;
  {
    auto core = std::make_shared<const SolverCore>(g, greedy_certificate());
    QueryServer srv(core);
    (void)srv.warm(batch);
    ref = srv.warm(batch);
    congest::Session session(core);
    session.save(path, w);
  }

  ServerConfig cfg;
  cfg.workers = 4;
  QueryServer restored = QueryServer::from_snapshot(path, cfg);
  std::vector<Response> got = restored.serve(batch);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << got[i].error;
    EXPECT_TRUE(io::run_reports_identical(got[i].report, ref[i].report))
        << "request " << i;
    // The snapshot shipped the warm cache: nothing is ever rebuilt.
    EXPECT_EQ(got[i].report.charged_construction_rounds, 0);
    EXPECT_EQ(got[i].report.cache_misses, 0);
  }
  std::remove(path.c_str());
}

// The streaming sink fires once per request, serialized, with the final
// response object.
TEST(ServeStreaming, SinkReceivesEveryResponseExactlyOnce) {
  Graph g = gen::grid(6, 6).graph();
  Rng wrng(67);
  std::vector<Weight> w = gen::unique_random_weights(g, wrng);
  auto core = std::make_shared<const SolverCore>(g, greedy_certificate());
  ServerConfig cfg;
  cfg.workers = 4;
  QueryServer srv(core, cfg);
  Request mst;
  mst.workload = "mst";
  mst.params.weights = w;
  std::vector<Request> batch(6, mst);
  std::vector<int> seen(batch.size(), 0);
  std::vector<Response> got =
      srv.serve(batch, [&](std::size_t i, const Response& r) {
        seen[i] += 1;
        EXPECT_TRUE(r.ok()) << r.error;
      });
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "request " << i;
  ASSERT_EQ(got.size(), batch.size());
}

}  // namespace
}  // namespace mns
