// Tests for the distributed (message-passing) shortcut construction: the
// uniform algorithm that never looks at graph structure — validity, capacity
// enforcement, usefulness of the result, and measured construction rounds.
#include <gtest/gtest.h>

#include "congest/aggregation.hpp"
#include "congest/distributed_shortcut.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/basic.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::DistributedShortcutResult;
using congest::Simulator;

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

TEST(DistributedShortcut, ValidOnWheel) {
  const VertexId n = 102;
  Graph g = gen::wheel(n);
  RootedTree t = bfs_tree(g, 0);
  Partition p = ring_sectors(n, 1, n - 1, 4);
  Simulator sim(g);
  DistributedShortcutResult r =
      congest::distributed_capped_greedy(sim, t, p, 4);
  EXPECT_EQ(validate_tree_restricted(g, t, r.shortcut), "");
  EXPECT_GE(r.rounds, 1);
  ShortcutMetrics m = measure_shortcut(g, t, p, r.shortcut);
  EXPECT_LE(m.congestion, 4);  // the cap is a hard promise
}

TEST(DistributedShortcut, CapOneSerializesEdges) {
  Rng rng(2);
  Graph g = gen::grid(8, 8).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 10, rng);
  Simulator sim(g);
  DistributedShortcutResult r =
      congest::distributed_capped_greedy(sim, t, p, 1);
  EXPECT_EQ(validate_tree_restricted(g, t, r.shortcut), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, r.shortcut);
  EXPECT_LE(m.congestion, 1);
}

TEST(DistributedShortcut, RejectsBadCap) {
  Graph g = gen::path(4);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(4, {{0, 1}});
  Simulator sim(g);
  EXPECT_THROW(congest::distributed_capped_greedy(sim, t, p, 0),
               std::invalid_argument);
}

TEST(DistributedShortcut, ResultAcceleratesAggregation) {
  // Construct distributively, then aggregate with the result: total rounds
  // (construction + use) must beat no-shortcut flooding on the wheel.
  const VertexId n = 1002;
  Graph g = gen::wheel(n);
  RootedTree t = bfs_tree(g, 0);
  Partition p = ring_sectors(n, 1, n - 1, 4);

  std::vector<congest::AggValue> init(n);
  for (VertexId v = 0; v < n; ++v) init[v] = {1000 + v, v};

  Simulator sim(g);
  DistributedShortcutResult built =
      congest::distributed_capped_greedy(sim, t, p, 8);
  congest::PartwiseAggregator agg(g, p, built.shortcut);
  auto res = agg.aggregate_min(sim, init);
  long long total_with = sim.rounds();

  Shortcut none;
  none.edges_of_part.resize(p.num_parts());
  congest::PartwiseAggregator slow(g, p, none);
  Simulator sim2(g);
  auto res2 = slow.aggregate_min(sim2, init);

  EXPECT_EQ(res.min_of_part[0], res2.min_of_part[0]);
  EXPECT_LT(total_with, sim2.rounds());
}

TEST(DistributedShortcut, HeadsMergeToSingleBlockWhenUncontended) {
  // A single part on a path rooted at one end: all heads climb to the root
  // and merge; block parameter must be 1.
  Graph g = gen::path(20);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(20, {{5, 6, 7, 12, 13}});
  Simulator sim(g);
  DistributedShortcutResult r =
      congest::distributed_capped_greedy(sim, t, p, 2);
  ShortcutMetrics m = measure_shortcut(g, t, p, r.shortcut);
  EXPECT_EQ(m.block, 1);
  EXPECT_EQ(r.frozen_heads, 0);
}

class DistributedShortcutSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributedShortcutSweep, MatchesCentralizedQualityClass) {
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(200, rng);
  const Graph& g = eg.graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 8, rng);

  Simulator sim(g);
  DistributedShortcutResult dist =
      congest::distributed_capped_greedy(sim, t, p, 8);
  EXPECT_EQ(validate_tree_restricted(g, t, dist.shortcut), "");
  ShortcutMetrics md = measure_shortcut(g, t, p, dist.shortcut);
  EXPECT_LE(md.congestion, 8);

  // Centralized greedy on the same instance: the distributed variant should
  // be in the same quality class (within a constant factor here).
  ShortcutMetrics mc =
      ShortcutEngine::global().build(g, t, p, greedy_certificate()).metrics;
  EXPECT_LE(md.quality, 20 * std::max<long long>(1, mc.quality));

  // Construction rounds: bounded by height * (cap + queueing slack).
  EXPECT_LE(dist.rounds, 4LL * (t.height() + 1) * (8 + p.num_parts()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedShortcutSweep,
                         ::testing::Values(1, 4, 9, 25));

TEST(DistributedShortcut, EndToEndOnExcludedMinorSample) {
  // The uniform distributed construction on a random L_k member — the
  // "never looks at structure" algorithm the paper's introduction stresses.
  Rng rng(77);
  gen::AlmostEmbeddableParams bp;
  bp.apices = 1;
  bp.genus = 1;
  bp.rows = 5;
  bp.cols = 5;
  gen::LkSample s = gen::random_lk_graph(4, bp, 2, 0.1, rng);
  RootedTree t = bfs_tree(s.graph, 0);
  Partition p = voronoi_partition(s.graph, 8, rng);

  Simulator sim(s.graph);
  DistributedShortcutResult built =
      congest::distributed_capped_greedy(sim, t, p, 8);
  EXPECT_EQ(validate_tree_restricted(s.graph, t, built.shortcut), "");
  ShortcutMetrics m = measure_shortcut(s.graph, t, p, built.shortcut);
  EXPECT_LE(m.congestion, 8);
  // Usable end to end: aggregation over the built shortcut converges.
  congest::PartwiseAggregator agg(s.graph, p, built.shortcut);
  std::vector<congest::AggValue> init(s.graph.num_vertices());
  for (VertexId v = 0; v < s.graph.num_vertices(); ++v) init[v] = {v, v};
  (void)agg.aggregate_min(sim, init);  // built-in convergence check
}

}  // namespace
}  // namespace mns
