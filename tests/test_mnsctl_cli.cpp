// mnsctl usage-contract tests: every malformed invocation — unknown
// subcommand, missing argument, bad flag value, missing flag value — must
// print the usage block to stderr and exit 2, consistently across every
// subcommand (including dist). Runs the real binary via popen; CMake points
// MNSCTL_BIN at $<TARGET_FILE:mnsctl> and skips this test entirely when
// examples are not built (the sanitizer jobs).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

CliResult run_mnsctl(const std::string& args) {
  const char* bin = std::getenv("MNSCTL_BIN");
  if (bin == nullptr || *bin == '\0') return {};
  const std::string cmd = std::string(bin) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  CliResult out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
    out.output.append(buf.data(), n);
  const int status = ::pclose(pipe);
  out.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status)
                                                     : -1;
  return out;
}

TEST(MnsctlCli, MalformedInvocationsPrintUsageAndExit2) {
  if (std::getenv("MNSCTL_BIN") == nullptr)
    GTEST_SKIP() << "MNSCTL_BIN not set (examples not built)";
  const std::vector<std::string> malformed = {
      "",                            // missing subcommand
      "frobnicate",                  // unknown subcommand
      "gen",                         // gen without --family
      "gen --family planar",         // gen without -o
      "gen --family",                // flag missing its value
      "gen --family planar --size nope -o x.mns",  // non-numeric value
      "gen --family planar --size 0 -o x.mns",     // out-of-range value
      "build",                       // build without <snapshot>
      "solve",                       // solve without <snapshot>
      "solve x.mns",                 // solve without --workload
      "serve",                       // serve without <snapshot>
      "dist",                        // dist without <snapshot>
      "dist x.mns",                  // dist without --workload
      "dist x.mns --workload mst --ranks 0",    // out-of-range ranks
      "dist x.mns --workload mst --drop-rate 2.0",  // out-of-range rate
      "inspect",                     // inspect without <snapshot>
      "diff",                        // diff without both documents
      "diff a.json",                 // diff with one document
      "baseline",                    // baseline without <in.json>
      "baseline a.json",             // baseline without -o
      "solve --bogus-flag x.mns",    // unknown flag
      "solve x.mns --workload nosuch",  // unregistered workload name
      "solve x.mns --workload mis --partition bogus",  // bad partition source
  };
  for (const std::string& args : malformed) {
    SCOPED_TRACE("mnsctl " + args);
    const CliResult r = run_mnsctl(args);
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
  }
  // The usage block is generated from the registry: a typo'd workload gets
  // the actual catalogue, not a stale hardcoded list.
  const CliResult bad = run_mnsctl("solve x.mns --workload nosuch");
  EXPECT_NE(bad.output.find("unknown workload 'nosuch'"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("registered workloads"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("domset"), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("mis"), std::string::npos) << bad.output;
}

TEST(MnsctlCli, WellFormedGenSolveDiffRoundTripExitsZero) {
  if (std::getenv("MNSCTL_BIN") == nullptr)
    GTEST_SKIP() << "MNSCTL_BIN not set (examples not built)";
  // A tiny end-to-end pass through the happy path keeps the exit-code
  // contract two-sided: 2 is for usage errors, 0 is for success.
  const std::string dir = ::testing::TempDir() + "mnsctl_cli";
  const std::string snap = dir + "/net.mns";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  CliResult gen = run_mnsctl("gen --family planar --size 4 --seed 3 -o " +
                             snap);
  EXPECT_EQ(gen.exit_code, 0) << gen.output;
  CliResult solve =
      run_mnsctl("solve " + snap + " --workload mst -o " + dir + "/a.json");
  EXPECT_EQ(solve.exit_code, 0) << solve.output;
  CliResult diff =
      run_mnsctl("diff --baseline " + dir + "/a.json " + dir + "/a.json");
  EXPECT_EQ(diff.exit_code, 0) << diff.output;
  // The new workloads ride the same snapshot: mis happy path, and an
  // LDD-partition mst whose report lands in the canonical JSON shape.
  CliResult mis = run_mnsctl("solve " + snap + " --workload mis");
  EXPECT_EQ(mis.exit_code, 0) << mis.output;
  EXPECT_NE(mis.output.find("\"kind\": \"mis\""), std::string::npos)
      << mis.output;
  CliResult ldd = run_mnsctl("solve " + snap +
                             " --workload mst --partition ldd --repeat 2");
  EXPECT_EQ(ldd.exit_code, 0) << ldd.output;
}

}  // namespace
