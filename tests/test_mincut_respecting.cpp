// Tests for 1- and 2-respecting cut evaluation — the verification side of
// Corollary 1's (1+eps) min-cut (Thorup's packing lemma needs 2-respecting
// cuts; 1-respecting alone gives a 2-approximation).
#include <gtest/gtest.h>

#include "congest/mincut.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

TEST(TwoRespecting, ExactOnCycleWithAnySpanningTree) {
  // On a cycle, every cut consists of exactly two edges; a spanning tree
  // (path) 2-respects every such cut, so best_two_respecting == exact.
  Graph g = gen::cycle(9);
  Rng rng(1);
  std::vector<Weight> w = gen::random_weights(g, 1, 50, rng);
  std::vector<EdgeId> tree = congest::kruskal_mst(g, w);
  Weight two = congest::best_two_respecting_cut(g, w, tree);
  Weight exact = congest::exact_min_cut(g, w);
  // The min cut's two edges: one may be the non-tree edge — then the cut
  // 1-respects the tree; either way 2-respecting covers it.
  EXPECT_EQ(two, exact);
}

TEST(TwoRespecting, NeverBelowExactNorAboveOneRespecting) {
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    EmbeddedGraph eg = gen::random_maximal_planar(60, rng);
    const Graph& g = eg.graph();
    std::vector<Weight> w = gen::random_weights(g, 1, 30, rng);
    std::vector<EdgeId> tree = congest::kruskal_mst(g, w);
    Weight one = congest::best_one_respecting_cut(g, w, tree);
    Weight two = congest::best_two_respecting_cut(g, w, tree);
    Weight exact = congest::exact_min_cut(g, w);
    EXPECT_GE(two, exact);
    EXPECT_LE(two, one);  // strictly more cuts are considered
  }
}

TEST(TwoRespecting, FindsCutOneRespectingMisses) {
  // Path 0-1-2-3 plus heavy chords arranged so the best cut needs two tree
  // edges: separate {1,2} from {0,3}.
  GraphBuilder b(4);
  b.add_edge(0, 1);  // light
  b.add_edge(1, 2);  // heavy (inside the target cut side)
  b.add_edge(2, 3);  // light
  b.add_edge(0, 3);  // heavy (outside)
  Graph g = b.build();
  std::vector<Weight> w(g.num_edges());
  w[g.find_edge(0, 1)] = 1;
  w[g.find_edge(1, 2)] = 100;
  w[g.find_edge(2, 3)] = 1;
  w[g.find_edge(0, 3)] = 100;
  // Spanning tree: the path 0-1-2-3.
  std::vector<EdgeId> tree{g.find_edge(0, 1), g.find_edge(1, 2),
                           g.find_edge(2, 3)};
  Weight exact = congest::exact_min_cut(g, w);
  EXPECT_EQ(exact, 2);  // cut {0,1} and {2,3}
  Weight two = congest::best_two_respecting_cut(g, w, tree);
  EXPECT_EQ(two, 2);
  Weight one = congest::best_one_respecting_cut(g, w, tree);
  EXPECT_GT(one, 2);  // every single-tree-edge cut includes a heavy edge
}

TEST(TwoRespecting, RejectsNonSpanningInput) {
  Graph g = gen::cycle(5);
  std::vector<EdgeId> not_a_tree{0, 1};
  EXPECT_THROW(
      (void)congest::best_two_respecting_cut(g, std::vector<Weight>(5, 1),
                                             not_a_tree),
      InvariantViolation);
}

class PackingQuality : public ::testing::TestWithParam<int> {};

TEST_P(PackingQuality, TwoRespectingOverPackingNailsExactCut) {
  // Thorup: with enough greedily packed trees, some tree 2-respects the min
  // cut. Verify on random planar instances with 10 packed trees.
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(50, rng);
  const Graph& g = eg.graph();
  std::vector<Weight> w = gen::random_weights(g, 1, 20, rng);
  Weight exact = congest::exact_min_cut(g, w);

  std::vector<Weight> load(g.num_edges(), 0);
  Weight best = std::numeric_limits<Weight>::max();
  for (int t = 0; t < 10; ++t) {
    std::vector<Weight> pw(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      pw[e] = (load[e] << 20) / std::max<Weight>(w[e], 1);
    std::vector<EdgeId> tree = congest::kruskal_mst(g, pw);
    for (EdgeId e : tree) ++load[e];
    best = std::min(best, congest::best_two_respecting_cut(g, w, tree));
  }
  EXPECT_EQ(best, exact) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingQuality,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mns
